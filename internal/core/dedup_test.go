package core

import (
	"testing"

	"github.com/respct/respct/internal/pmem"
)

// Write-combining semantics: a line registered many times per epoch enters
// toFlush once, the dedup window resets exactly when the list is cleared or
// stolen (sync flush, async cut, recovery), and the async-mode side effects
// of a registration — dirty bit, collision guard — must keep firing even
// when the registration itself is combined away.

// TestWriteCombineRegistersOnce: N tracked stores to the same line append a
// single toFlush entry, and the checkpoint still persists the final value.
func TestWriteCombineRegistersOnce(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	h := rt.Heap()
	p := rt.Arena().AllocRaw(th, 8) // one line of words

	n0 := len(th.toFlush)
	for i := 0; i < 100; i++ {
		// Different words of the same line: dedup is line-granular.
		th.StoreTracked(p+pmem.Addr(i%8)*8, uint64(i))
	}
	if got := len(th.toFlush) - n0; got != 1 {
		t.Fatalf("100 same-line stores registered %d entries, want 1", got)
	}

	mustCheckpointSolo(t, rt)
	for i := 0; i < 8; i++ {
		a := p + pmem.Addr(i)*8
		if got, want := h.LoadPersistent64(a), h.Load64(a); got != want {
			t.Fatalf("word %d not durable: persistent %#x, volatile %#x", i, got, want)
		}
	}
}

// TestWriteCombineAliasedLinesStayRegistered: two lines that collide in the
// direct-mapped cache evict each other; every re-registration after a false
// miss appends a duplicate, which downstream must tolerate (the flusher
// coalesces). Correctness never depends on a cache hit.
func TestWriteCombineAliasedLinesStayRegistered(t *testing.T) {
	rt := newTestRuntime(t, 1, 32<<20)
	th := rt.Thread(0)
	h := rt.Heap()
	// Two allocations lineCacheSlots lines apart alias the same slot. The
	// arena won't hand out addresses that far apart from small allocations,
	// so construct the alias from one large raw region.
	words := (lineCacheSlots + 1) * (pmem.LineSize / 8)
	p := rt.Arena().AllocRaw(th, words)
	a := pmem.LineAddr(pmem.LineOf(p) + 1) // line-aligned inside the region
	b := a + lineCacheSlots*pmem.LineSize

	n0 := len(th.toFlush)
	for i := 0; i < 4; i++ {
		th.StoreTracked(a, uint64(10+i))
		th.StoreTracked(b, uint64(20+i))
	}
	added := th.toFlush[n0:]
	if len(added) != 8 {
		t.Fatalf("alternating aliased stores registered %d entries, want 8 (every one a cache miss)", len(added))
	}
	mustCheckpointSolo(t, rt)
	if got := h.LoadPersistent64(a); got != 13 {
		t.Fatalf("aliased line a persisted %d, want 13", got)
	}
	if got := h.LoadPersistent64(b); got != 23 {
		t.Fatalf("aliased line b persisted %d, want 23", got)
	}
}

// TestWriteCombineResetsAcrossEpochs: the checkpoint clears toFlush, so the
// same line stored in the next epoch must register (and flush) again — a
// stale cache hit here would drop the epoch's only registration.
func TestWriteCombineResetsAcrossEpochs(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	h := rt.Heap()
	p := rt.Arena().AllocRaw(th, 1)

	th.StoreTracked(p, 1)
	mustCheckpointSolo(t, rt)
	if got := h.LoadPersistent64(p); got != 1 {
		t.Fatalf("epoch 1 value not durable: %d", got)
	}

	if n := len(th.toFlush); n != 0 {
		t.Fatalf("toFlush not cleared by checkpoint: %d entries", n)
	}
	th.StoreTracked(p, 2)
	if n := len(th.toFlush); n != 1 {
		t.Fatalf("re-store after checkpoint registered %d entries, want 1 (dedup must reset)", n)
	}
	mustCheckpointSolo(t, rt)
	if got := h.LoadPersistent64(p); got != 2 {
		t.Fatalf("epoch 2 value not durable: %d (registration was combined away across epochs)", got)
	}
}

// TestWriteCombineResetsAcrossRecover: recovery hands out fresh thread
// handles; a line tracked before the crash must register again on the
// recovered runtime and reach NVMM at its next checkpoint.
func TestWriteCombineResetsAcrossRecover(t *testing.T) {
	h := pmem.New(pmem.Config{Size: 8 << 20})
	rt, err := NewRuntime(h, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	th := rt.Thread(0)
	p := rt.Arena().AllocRaw(th, 1)
	th.StoreTracked(p, 1)
	mustCheckpointSolo(t, rt)

	rt2, _, err := Recover(h, Config{Threads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	th2 := rt2.Thread(0)
	n0 := len(th2.toFlush)
	th2.StoreTracked(p, 2)
	if got := len(th2.toFlush) - n0; got != 1 {
		t.Fatalf("post-recovery store registered %d entries, want 1", got)
	}
	mustCheckpointSolo(t, rt2)
	if got := h.LoadPersistent64(p); got != 2 {
		t.Fatalf("post-recovery value not durable: %d", got)
	}
}

// TestWriteCombineAsyncDirtyBits: under AsyncFlush the FIRST registration of
// a line sets its bit in the active pending bitmap; combined-away re-stores
// must leave the bit set. The cut relies on the bitmap alone — a cleared or
// never-set bit is a line the drain never writes back.
func TestWriteCombineAsyncDirtyBits(t *testing.T) {
	rt := newAsyncRuntime(t, 1, false)
	th := rt.Thread(0)
	h := rt.Heap()
	p := rt.Arena().AllocRaw(th, 1)

	n0 := len(th.toFlush)
	th.StoreTracked(p, 1)
	th.StoreTracked(p, 2) // combined away
	th.StoreTracked(p, 3) // combined away
	if got := len(th.toFlush) - n0; got != 1 {
		t.Fatalf("3 same-line stores registered %d entries, want 1", got)
	}
	line := pmem.LineOf(p)
	bits := rt.pendingBits[rt.activeBits.Load()]
	if bits[line/64].Load()&(1<<(uint(line)%64)) == 0 {
		t.Fatal("line not marked dirty in the active bitmap after deduped stores")
	}

	mustCheckpointSolo(t, rt)
	rt.WaitDrain()
	if got := h.LoadPersistent64(p); got != 3 {
		t.Fatalf("drained value = %d, want 3", got)
	}
}

// TestWriteCombineCollisionGuardOnDedupedStore: with a drain stalled mid
// write-back, the first post-cut store to a pending line claims and flushes
// it (flush-on-collision) and a second, combined-away store to the same line
// must still run the guard — and must NOT re-flush, which would overwrite
// the cut's NVMM image with the running epoch's value.
func TestWriteCombineCollisionGuardOnDedupedStore(t *testing.T) {
	rt := newAsyncRuntime(t, 1, false)
	h := rt.Heap()
	th := rt.Thread(0)
	p := rt.Arena().AllocRaw(th, 1)
	th.StoreTracked(p, 30)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain()

	th.StoreTracked(p, 31) // tracked in the running epoch
	entered, release := stallDrain(rt)
	mustCheckpointSolo(t, rt)
	<-entered

	n0 := len(th.toFlush)
	th.StoreTracked(p, 40) // collides: claims the pending line, flushes 31
	th.StoreTracked(p, 41) // deduped registration, guard still runs
	if got := len(th.toFlush) - n0; got != 1 {
		t.Fatalf("post-cut stores registered %d entries, want 1", got)
	}
	if rt.Stats().CollisionFlushes != 1 {
		t.Fatalf("collision flushes = %d, want exactly 1 (the deduped store must not re-flush)", rt.Stats().CollisionFlushes)
	}
	if got := h.LoadPersistent64(p); got != 31 {
		t.Fatalf("persistent word = %d, want the cut value 31", got)
	}

	close(release)
	rt.WaitDrain()
	if got := h.LoadPersistent64(p); got != 31 {
		t.Fatalf("persistent word = %d after drain, want 31 (drain overwrote a claimed line)", got)
	}
	mustCheckpointSolo(t, rt)
	rt.WaitDrain()
	if got := h.LoadPersistent64(p); got != 41 {
		t.Fatalf("persistent word = %d after next checkpoint, want 41", got)
	}
}

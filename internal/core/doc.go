//respct:exportdoc

// Package core implements ResPCT (EuroSys 2022): checkpoint-based fault
// tolerance for multi-threaded programs on non-volatile main memory, built
// on In-Cache-Line Logging (InCLL) and programmer-positioned Restart Points.
//
// # Model
//
// Execution is divided into epochs. During an epoch the program updates
// persistent variables through InCLL (Update), which places the undo log of
// a variable — its previous value and the epoch of its first modification —
// in the same cache line as the variable itself. The PCSO property of the
// simulated hardware (package pmem) guarantees the log can never reach NVMM
// after the value it protects, without any flush or fence on the critical
// path. The epoch tag doubles as the modification tracker: the first update
// of a variable in an epoch appends its address to the updating thread's
// to-be-flushed list.
//
// A checkpoint ends an epoch: it waits until every worker thread is parked
// at a Restart Point (Thread.RP), flushes every tracked cache line with a
// pool of flushers, increments and persists the global epoch counter, and
// releases the threads. If the machine crashes, Recover rolls back every
// InCLL variable modified during the crashed epoch to its logged value,
// which restores exactly the state of the last completed checkpoint —
// buffered durable linearizability.
//
// # Programming rules (paper §2.1 and §3.3)
//
//   - Programs must be race free: a thread updating a shared persistent
//     variable must hold the lock protecting it. Atomic read-modify-write
//     on managed data is not supported.
//   - Restart points may not be placed inside critical sections, and every
//     thread must reach one eventually.
//   - A persistent variable whose first access after an RP is a read, and
//     which is written later (a WAR dependency), needs InCLL. Persistent
//     variables that are only written before being read (RAW) may use plain
//     stores plus Thread.AddModified for tracking.
//   - Waits on condition variables must be wrapped in CheckpointAllow /
//     CheckpointPrevent, with an RP immediately before the critical section.
//
// # API correspondence with the paper (Table 1)
//
//	InCLL_data<T>            -> InCLL (plus typed views)
//	init_InCLL(l, val)       -> Thread.Init
//	update_InCLL(l, val)     -> Thread.Update
//	add_modified(addr)       -> Thread.AddModified
//	RP(id)                   -> Thread.RP
//	checkpoint_allow()       -> Thread.CheckpointAllow
//	checkpoint_prevent(m)    -> Thread.CheckpointPrevent
//	checkpoint()             -> Runtime.Checkpoint (driven by Checkpointer)
//	recovery()               -> Recover
package core

package core

import (
	"testing"
	"time"

	"github.com/respct/respct/internal/pmem"
)

func newAsyncRuntime(t *testing.T, threads int, chaos bool) *Runtime {
	t.Helper()
	cfg := pmem.Config{Size: 8 << 20}
	if chaos {
		cfg.Chaos = true
		cfg.Seed = 7
	}
	rt, err := NewRuntime(pmem.New(cfg), Config{Threads: threads, AsyncFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// stallDrain installs a drain hook that blocks every drain at its start
// until release is closed, reporting each entered drain's epoch on entered.
func stallDrain(rt *Runtime) (entered chan uint64, release chan struct{}) {
	entered = make(chan uint64, 8)
	release = make(chan struct{})
	rt.SetDrainHook(func(ending uint64, preCommit bool) {
		if !preCommit {
			entered <- ending
			<-release
		}
	})
	return entered, release
}

func TestAsyncCheckpointCommitsInBackground(t *testing.T) {
	rt := newAsyncRuntime(t, 1, false)
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 41)
	th.Update(v, 42)

	info := mustCheckpointSolo(t, rt)
	rt.WaitDrain()

	if info.FlushTime != 0 || info.LinesWrote != 0 {
		t.Fatalf("async CheckpointInfo reported foreground flush work: %+v", info)
	}
	if got := rt.DurableEpoch(); got != info.Epoch+1 {
		t.Fatalf("durable epoch = %d, want %d", got, info.Epoch+1)
	}
	if got := rt.Heap().LoadPersistent64(rt.Heap().EpochAddr()); got != info.Epoch+1 {
		t.Fatalf("persistent epoch = %d, want %d", got, info.Epoch+1)
	}
	if got := rt.Heap().LoadPersistent64(v.Addr()); got != 42 {
		t.Fatalf("persistent record = %d, want 42", got)
	}
	st := rt.Stats()
	if st.Drains != 1 {
		t.Fatalf("drains = %d, want 1", st.Drains)
	}
	if st.LinesWrote == 0 {
		t.Fatal("drain reported zero lines written back")
	}
}

func TestAsyncCollisionFlushAndLogDuringDrain(t *testing.T) {
	rt := newAsyncRuntime(t, 1, false)
	h := rt.Heap()
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain() // v=1 durable

	th.Update(v, 2) // first update of the running epoch
	entered, release := stallDrain(rt)
	info := mustCheckpointSolo(t, rt) // cut returns immediately, drain stalls
	<-entered

	// Colliding update while the drain still owes v's line to NVMM: the
	// worker must flush the cut image first (record=2) and undo-log the
	// previous durable cut's value (backup=1) to the collision log.
	th.Update(v, 3)
	if got := h.LoadPersistent64(v.Addr()); got != 2 {
		t.Fatalf("flush-on-collision persisted record %d, want the cut value 2", got)
	}
	st := rt.Stats()
	if st.CollisionFlushes == 0 {
		t.Fatal("no collision flush recorded")
	}
	if st.CollisionsLogged == 0 {
		t.Fatal("no collision-log entry recorded")
	}
	if got := rt.DurableEpoch(); got != info.Epoch {
		t.Fatalf("durable epoch advanced to %d before the drain committed", got)
	}

	close(release)
	rt.WaitDrain()
	if got := rt.DurableEpoch(); got != info.Epoch+1 {
		t.Fatalf("durable epoch = %d after drain, want %d", got, info.Epoch+1)
	}
}

func TestAsyncStoreTrackedFlushOnCollision(t *testing.T) {
	rt := newAsyncRuntime(t, 1, false)
	h := rt.Heap()
	th := rt.Thread(0)
	p := rt.Arena().AllocRaw(th, 8)
	th.StoreTracked(p, 30)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain()

	th.StoreTracked(p, 31) // tracked in the running epoch
	entered, release := stallDrain(rt)
	mustCheckpointSolo(t, rt)
	<-entered

	th.StoreTracked(p, 40) // collides with the pending line
	if got := h.LoadPersistent64(p); got != 31 {
		t.Fatalf("persistent word = %d, want the cut value 31", got)
	}
	if rt.Stats().CollisionFlushes == 0 {
		t.Fatal("no collision flush recorded")
	}
	close(release)
	rt.WaitDrain()
	// The worker claimed the line; the drain must not have overwritten the
	// cut image with the epoch-N+1 value.
	if got := h.LoadPersistent64(p); got != 31 {
		t.Fatalf("persistent word = %d after drain, want 31", got)
	}
}

func TestAsyncCrashMidDrainRecoversPreviousCheckpoint(t *testing.T) {
	rt := newAsyncRuntime(t, 1, true)
	h := rt.Heap()
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain() // C: v=1 durable

	th.Update(v, 2) // epoch N
	entered, release := stallDrain(rt)
	info := mustCheckpointSolo(t, rt) // cut of N; drain of N stalls
	<-entered

	// Double-epoch collision: v was modified in N and now in N+1. The
	// backup (1, the value at the last durable cut) moves to the collision
	// log; then force the worst case — the whole volatile image, including
	// the (5, 2, N+1) cell, reaches NVMM before the crash.
	th.Update(v, 5)
	h.EvictAll()
	h.Crash()
	close(release)
	rt.WaitDrain()

	rt2, rep, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedEpoch != info.Epoch {
		t.Fatalf("failed epoch = %d, want the uncommitted %d", rep.FailedEpoch, info.Epoch)
	}
	if !rep.DrainInterrupted {
		t.Fatal("recovery did not detect the interrupted drain")
	}
	if rep.CollisionsApplied == 0 {
		t.Fatal("no collision-log entries applied")
	}
	if got := rt2.Read(v); got != 1 {
		t.Fatalf("recovered value = %d, want 1 (previous completed checkpoint)", got)
	}

	// Idempotence: crash again before any checkpoint; recovery must land
	// on the same state.
	h.Crash()
	rt3, rep2, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FailedEpoch != rep.FailedEpoch {
		t.Fatalf("second recovery failed epoch = %d, want %d", rep2.FailedEpoch, rep.FailedEpoch)
	}
	if got := rt3.Read(v); got != 1 {
		t.Fatalf("second recovery value = %d, want 1", got)
	}
}

func TestAsyncCrashPreCommitRecoversPreviousCheckpoint(t *testing.T) {
	rt := newAsyncRuntime(t, 1, true)
	h := rt.Heap()
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain()
	th.Update(v, 2)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain() // C: v=2 durable

	th.Update(v, 3)
	// Crash after the drain's flush but before the epoch counter persists:
	// every cut line is in NVMM, yet the cut never durably committed.
	rt.SetDrainHook(func(ending uint64, preCommit bool) {
		if preCommit {
			h.Crash()
		}
	})
	info := mustCheckpointSolo(t, rt)
	rt.WaitDrain()

	rt2, rep, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedEpoch != info.Epoch {
		t.Fatalf("failed epoch = %d, want %d", rep.FailedEpoch, info.Epoch)
	}
	if !rep.DrainInterrupted {
		t.Fatal("recovery did not detect the interrupted drain")
	}
	if got := rt2.Read(v); got != 2 {
		t.Fatalf("recovered value = %d, want 2 (previous completed checkpoint)", got)
	}
}

func TestAsyncCrashAfterCommitKeepsLatestCheckpoint(t *testing.T) {
	rt := newAsyncRuntime(t, 1, true)
	h := rt.Heap()
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain()
	th.Update(v, 2)
	info := mustCheckpointSolo(t, rt)
	rt.WaitDrain() // drain of info.Epoch committed
	h.Crash()

	rt2, rep, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedEpoch != info.Epoch+1 {
		t.Fatalf("failed epoch = %d, want %d", rep.FailedEpoch, info.Epoch+1)
	}
	if rep.DrainInterrupted {
		t.Fatal("committed drain misdetected as interrupted")
	}
	if got := rt2.Read(v); got != 2 {
		t.Fatalf("recovered value = %d, want 2", got)
	}
}

func TestAsyncMagazineRecycleWaitsForDurableEpoch(t *testing.T) {
	rt := newAsyncRuntime(t, 1, false)
	th := rt.Thread(0)
	a := rt.Arena()
	p := a.AllocCells(th, 1)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain()

	a.Free(th, p) // freed in the running epoch N
	entered, release := stallDrain(rt)
	mustCheckpointSolo(t, rt) // cut of N; drain stalls, C_N not durable
	<-entered

	// The freed block's NVMM payload is still the previous cut's image
	// (the cut elided it as dead); recycling it now would let epoch-N+1
	// bytes overwrite state a mid-drain crash recovers through.
	q := a.AllocCells(th, 1)
	if q == p {
		t.Fatal("block recycled before its freeing epoch durably committed")
	}
	close(release)
	rt.WaitDrain()
	r := a.AllocCells(th, 1)
	if r != p {
		t.Fatalf("block not recycled after commit: got %#x, want %#x", uint64(r), uint64(p))
	}
}

func TestCheckpointJoinsInFlightDrain(t *testing.T) {
	rt := newAsyncRuntime(t, 1, false)
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)

	entered, release := stallDrain(rt)
	first := mustCheckpointSolo(t, rt)
	<-entered

	done := make(chan CheckpointInfo, 1)
	go func() {
		th.CheckpointAllow()
		info := rt.Checkpoint()
		th.CheckpointPrevent(nil)
		done <- info
	}()
	select {
	case <-done:
		t.Fatal("second checkpoint completed while the first drain was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	second := <-done
	<-entered // the second cut's own drain
	rt.WaitDrain()
	if second.Epoch != first.Epoch+1 {
		t.Fatalf("second checkpoint closed epoch %d, want %d", second.Epoch, first.Epoch+1)
	}
	if got := rt.DurableEpoch(); got != second.Epoch+1 {
		t.Fatalf("durable epoch = %d, want %d", got, second.Epoch+1)
	}
}

// TestAsyncRecoverDoubleEpochBumpCollision pins down the recovery ordering
// bug where the block walk was bounded by the bump cursor before the
// collision log had restored it. The bump cell is updated by a carve in
// epoch N (whose drain stalls) and again by a carve in N+1, and only the
// bump line — not the fresh blocks' headers — reaches NVMM before the
// crash. Recovery must take the walk bound from the collision log (the
// last durable cursor); the mere rollback of the evicted cell yields the
// not-yet-durable epoch-N cursor, and walking to it hits a block header
// that was never flushed.
func TestAsyncRecoverDoubleEpochBumpCollision(t *testing.T) {
	rt := newAsyncRuntime(t, 1, true)
	h := rt.Heap()
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain() // v = 1 and the bump cursor durable

	if rt.Arena().AllocCells(th, 48) == pmem.NilAddr { // epoch N: fresh carve
		t.Fatal("carve failed")
	}
	entered, release := stallDrain(rt)
	mustCheckpointSolo(t, rt)
	<-entered

	if rt.Arena().AllocCells(th, 48) == pmem.NilAddr { // epoch N+1: bump collides
		t.Fatal("carve failed")
	}
	h.EvictLine(int(rt.Arena().bump.Addr() / pmem.LineSize))
	h.Crash()
	close(release)
	rt.WaitDrain()

	rt2, rep, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DrainInterrupted {
		t.Fatal("recovery did not detect the interrupted drain")
	}
	if rep.CollisionsApplied == 0 {
		t.Fatal("no collision-log entries applied")
	}
	if got := rt2.Read(v); got != 1 {
		t.Fatalf("recovered value = %d, want 1", got)
	}
}

// TestAsyncRecoveredLinesSurviveNextDrain pins down the dirty-bitmap gap
// where cells rolled back by recovery were tracked in the system flush list
// before the bitmaps existed. Execution resumes in the failed epoch, so a
// post-recovery update of such a cell is not a first touch and relies on
// that system-list entry alone — without a bit, the next drain's
// test-and-clear skipped the line and committed an epoch whose update never
// reached NVMM.
func TestAsyncRecoveredLinesSurviveNextDrain(t *testing.T) {
	rt := newAsyncRuntime(t, 1, true)
	h := rt.Heap()
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain() // v = 1 durable

	th.Update(v, 2)
	h.EvictAll() // the (2, 1, N) cell reaches NVMM uncommitted
	h.Crash()

	rt2, _, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Read(v); got != 1 {
		t.Fatalf("recovered value = %d, want 1", got)
	}

	// Update the rolled-back cell in the resumed epoch (tag already
	// matches: no first touch, no re-tracking), checkpoint, and crash
	// after the drain commits. The drain must have flushed the line.
	rt2.Thread(0).Update(v, 3)
	mustCheckpointSolo(t, rt2)
	rt2.WaitDrain()
	h.Crash()

	rt3, _, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt3.Read(v); got != 3 {
		t.Fatalf("value after post-recovery checkpoint and crash = %d, want 3", got)
	}
}

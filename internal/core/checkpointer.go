package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Checkpointer drives periodic checkpoints, the paper's timer. The interval
// is the targeted epoch duration; the effective period can be slightly
// longer because a checkpoint waits for every thread to reach a restart
// point (§5.2 measures this gap).
type Checkpointer struct {
	rt       *Runtime
	interval time.Duration
	stop     chan struct{}
	done     sync.WaitGroup

	periods atomic.Int64 // completed periods
	totalNs atomic.Int64 // sum of completion-to-completion gaps

	histMu  sync.Mutex
	history []CheckpointInfo // ring of the most recent checkpoints
	histPos int
}

// historyCap bounds the retained per-checkpoint records.
const historyCap = 256

// StartCheckpointer begins taking a checkpoint every interval. Workers must
// reach restart points (or allow windows) for each checkpoint to complete;
// a worker goroutine that exits must call Thread.CheckpointAllow first or
// the checkpointer will stall waiting for it.
func (rt *Runtime) StartCheckpointer(interval time.Duration) *Checkpointer {
	c := &Checkpointer{rt: rt, interval: interval, stop: make(chan struct{})}
	c.done.Add(1)
	go func() {
		defer c.done.Done()
		last := time.Now()
		timer := time.NewTimer(interval)
		defer timer.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-timer.C:
			}
			info := rt.Checkpoint()
			now := time.Now()
			c.periods.Add(1)
			c.totalNs.Add(int64(now.Sub(last)))
			last = now
			c.histMu.Lock()
			if len(c.history) < historyCap {
				c.history = append(c.history, info)
			} else {
				c.history[c.histPos] = info
				c.histPos = (c.histPos + 1) % historyCap
			}
			c.histMu.Unlock()
			timer.Reset(interval)
		}
	}()
	return c
}

// Stop halts the periodic checkpoints and waits for any in-flight one.
func (c *Checkpointer) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.done.Wait()
}

// Interval returns the configured checkpoint period.
func (c *Checkpointer) Interval() time.Duration { return c.interval }

// History returns copies of the most recent checkpoint records (up to 256),
// oldest first.
func (c *Checkpointer) History() []CheckpointInfo {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	out := make([]CheckpointInfo, 0, len(c.history))
	out = append(out, c.history[c.histPos:]...)
	out = append(out, c.history[:c.histPos]...)
	return out
}

// MaxPause returns the longest checkpoint duration in the recorded history.
func (c *Checkpointer) MaxPause() time.Duration {
	var maxP time.Duration
	for _, info := range c.History() {
		if info.Total > maxP {
			maxP = info.Total
		}
	}
	return maxP
}

// EffectivePeriod returns the measured average completion-to-completion
// epoch duration, or zero if no period completed yet.
func (c *Checkpointer) EffectivePeriod() time.Duration {
	n := c.periods.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(c.totalNs.Load() / n)
}

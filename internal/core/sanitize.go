package core

import (
	"os"

	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/psan"
)

// Sanitizer integration. The runtime owns the sanitizer's lifecycle: it is
// built and attached after format or recovery (so construction-time stores
// never count), told about every epoch boundary, exempt region and publish
// cursor, and consulted at both commit paths. The per-event hooks live in
// pmem (see pmem.LineSanitizer); the rules live in internal/psan.

// Test-only fault injection for the recovery regression fixtures. Both
// re-seed bugs this codebase actually shipped and fixed; the fixtures keep
// them detectable.
var (
	// faultSkipReplayMarks skips finishInit's marking of recovery-replayed
	// addresses in the async pending bitmaps: the first drain's
	// test-and-clear then skips their lines and commits an epoch that never
	// flushed them — the rule-R1 scenario the sanitizer exists to catch.
	faultSkipReplayMarks bool
	// faultWalkBeforeReplay makes Recover walk the carved region before
	// replaying the collision log. When the bump cursor itself was
	// collision-logged, the not-yet-durable bump extends the walk into
	// blocks whose headers never reached NVMM.
	faultWalkBeforeReplay bool
)

// sanitizeWanted resolves Config.Sanitize against the RESPCT_SANITIZE
// environment variable. An explicit Config.Sanitize always collects (tests
// that opt in want to inspect findings); the environment variable arms
// runtimes that did not opt in — CI sets RESPCT_SANITIZE=panic to fail any
// test suite at its first violation. SkipFlush disables sanitizing outright:
// that configuration elides the flush by design, so every commit would be a
// rule-R1 finding.
func (rt *Runtime) sanitizeWanted() (on bool, mode psan.Mode) {
	if rt.cfg.SkipFlush {
		return false, psan.ModeCollect
	}
	if rt.cfg.Sanitize {
		return true, psan.ModeCollect
	}
	switch os.Getenv("RESPCT_SANITIZE") {
	case "":
		return false, psan.ModeCollect
	case "panic":
		return true, psan.ModePanic
	default:
		return true, psan.ModeCollect
	}
}

// attachSanitizer builds, configures and attaches the shadow heap, or
// detaches a predecessor's (a recovered heap may still carry the crashed
// runtime's sanitizer). epoch is the epoch execution starts in; replay
// re-arms the tracked state of addresses recovery registered for flushing,
// so a resumed epoch that fails to flush them still trips rule R1.
func (rt *Runtime) attachSanitizer(epoch uint64, replay bool) {
	on, mode := rt.sanitizeWanted()
	if !on {
		rt.heap.SetSanitizer(nil)
		return
	}
	s := psan.New(rt.heap, mode)
	a := rt.arena
	// Manual-persistence regions: each of these owns its durability with
	// explicit store→flush→fence ordering, outside the tracking layer.
	s.ExemptRange(rt.heap.EpochAddr(), pmem.LineSize)
	s.ExemptRange(a.markerAddr(), pmem.LineSize)
	s.ExemptRange(a.collHdrAddr(), pmem.LineSize)
	s.ExemptRange(a.collEntryAddr(0), collLogEntries*16)
	s.ExemptRange(a.flightHdrAddr(), flightRingLines*pmem.LineSize)
	// Publish cursors: entry-then-cursor rings whose inversion rule R3
	// catches. The collision log's guard word (offset 0) is armed before a
	// drain window opens and is not a cursor; its count word is.
	s.RegisterCursor(a.flightHdrAddr(), a.flightHdrAddr()+pmem.LineSize, flightEntries*pmem.LineSize)
	s.RegisterCursor(a.collHdrAddr()+8, a.collEntryAddr(0), collLogEntries*16)
	s.AdvanceEpoch(epoch)
	if replay {
		for _, t := range rt.all {
			for _, addr := range t.toFlush {
				s.NoteTracked(addr)
			}
		}
	}
	rt.san = s
	rt.heap.SetSanitizer(s)
	s.SetPhase(psan.PhaseRun)
}

// sanBeforeCommit runs the rule-R1 gate for an epoch about to publish its
// commit: the dead spans the flush elided carry no durability obligation and
// are dropped first, then every line still owed to the ending epoch is
// checked. Both commit paths — the synchronous checkpoint and the async
// drain — call it immediately before the epoch word is stored.
func (rt *Runtime) sanBeforeCommit(ending uint64, dead []deadRange) {
	s := rt.san
	if s == nil {
		return
	}
	for _, d := range dead {
		s.ForgetRange(d.start, int(d.end-d.start))
	}
	s.CheckCommit(ending)
}

// sanTrack mirrors one tracking registration into the sanitizer and runs
// rule R4: a registration from a thread whose checkpoint-allow window is
// open races the checkpointer, so the epoch the store lands in is undefined.
// The system thread is never gated and is exempt from the window rule.
func (t *Thread) sanTrack(s *psan.Sanitizer, a pmem.Addr) {
	if t.id >= 0 && t.rt.flags[t.id].v.Load() {
		s.ReportStoreOutsideWindow(a)
	}
	s.NoteTracked(a)
}

// Sanitizer returns the attached persistency sanitizer, or nil when the
// runtime is not sanitized (Config.Sanitize unset and RESPCT_SANITIZE
// empty, or SkipFlush).
func (rt *Runtime) Sanitizer() *psan.Sanitizer { return rt.san }

// SanFindings renders the sanitizer's collected violations one string each;
// nil when the runtime is not sanitized or clean.
func (rt *Runtime) SanFindings() []string {
	if rt.san == nil {
		return nil
	}
	f := rt.san.Findings()
	if len(f) == 0 {
		return nil
	}
	return f
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/respct/respct/internal/pmem"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ total, wantClass int }{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2}, {4096, 6},
	}
	for _, c := range cases {
		got, err := classFor(c.total)
		if err != nil || got != c.wantClass {
			t.Errorf("classFor(%d) = %d,%v want %d", c.total, got, err, c.wantClass)
		}
	}
	if _, err := classFor(classSize(numClasses-1) + 1); err == nil {
		t.Error("classFor accepted an over-large request")
	}
}

func TestLayoutPackRoundTrip(t *testing.T) {
	f := func(class uint8, cells, raw uint32) bool {
		c := int(class) % numClasses
		ce := int(cells) % (1 << 27)
		rw := int(raw) % (1 << 27)
		gc, gce, grw := unpackLayout(packLayout(c, ce, rw))
		return gc == c && gce == ce && grw == rw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocReturnsDistinctAlignedBlocks(t *testing.T) {
	rt := newTestRuntime(t, 1, 32<<20)
	th := rt.Thread(0)
	seen := map[pmem.Addr]bool{}
	for i := 0; i < 500; i++ {
		p := rt.Arena().Alloc(th, i%3, i%5)
		if p == pmem.NilAddr {
			t.Fatal("exhausted")
		}
		if p%pmem.LineSize != 0 {
			t.Fatalf("payload %#x not line aligned", uint64(p))
		}
		if seen[p] {
			t.Fatalf("payload %#x returned twice", uint64(p))
		}
		seen[p] = true
	}
}

func TestAllocExhaustionReturnsNil(t *testing.T) {
	h := pmem.New(pmem.Config{Size: 1 << 20})
	rt, err := NewRuntime(h, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	th := rt.Thread(0)
	n := 0
	for {
		if rt.Arena().Alloc(th, 0, 8000) == pmem.NilAddr {
			break
		}
		n++
		if n > 1000 {
			t.Fatal("never exhausted")
		}
	}
	// Small allocations may still fit or also be exhausted — either way no
	// panic, and the arena stays consistent.
	rt.Arena().Alloc(th, 1, 0)
}

func TestMagazineRecyclesOnlyAfterEpoch(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	var blocks []pmem.Addr
	for i := 0; i < 10; i++ {
		blocks = append(blocks, rt.Arena().AllocCells(th, 1))
	}
	for _, b := range blocks {
		rt.Arena().Free(th, b)
	}
	// Same epoch: none of the freed blocks may be recycled.
	for i := 0; i < 10; i++ {
		p := rt.Arena().AllocCells(th, 1)
		for _, b := range blocks {
			if p == b {
				t.Fatalf("block %#x recycled in its freeing epoch", uint64(b))
			}
		}
	}
	mustCheckpointSolo(t, rt)
	// Next epoch: the magazine serves the freed blocks (FIFO).
	p := rt.Arena().AllocCells(th, 1)
	if p != blocks[0] {
		t.Fatalf("expected magazine to serve %#x, got %#x", uint64(blocks[0]), uint64(p))
	}
}

func TestMagazineIsPerThread(t *testing.T) {
	rt := newTestRuntime(t, 2, 0)
	t0, t1 := rt.Thread(0), rt.Thread(1)
	b := rt.Arena().AllocCells(t0, 1)
	rt.Arena().Free(t0, b)
	mustCheckpointSolo(t, rt)
	// Thread 1 cannot see thread 0's magazine; it carves fresh.
	p := rt.Arena().AllocCells(t1, 1)
	if p == b {
		t.Fatal("magazine leaked across threads")
	}
	// Thread 0 still recycles it.
	if q := rt.Arena().AllocCells(t0, 1); q != b {
		t.Fatalf("thread 0 magazine lost its block: got %#x want %#x", uint64(q), uint64(b))
	}
}

// TestQuickArenaModel drives random alloc/free/write/checkpoint/crash
// sequences and checks two invariants against a volatile model: (1) live
// blocks never alias, and (2) after a crash, every block that was live at
// the last checkpoint still holds its checkpointed contents.
func TestQuickArenaModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		h := pmem.New(pmem.Config{Size: 16 << 20, Seed: seed})
		rt, err := NewRuntime(h, Config{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		th := rt.Thread(0)
		rng := rand.New(rand.NewSource(seed))

		type live struct {
			payload pmem.Addr
			cell    InCLL
			val     uint64
		}
		var blocks []live
		certified := map[pmem.Addr]uint64{} // cell addr -> value at last checkpoint

		for _, op := range ops {
			switch op % 5 {
			case 0, 1: // alloc + init
				p := rt.Arena().AllocCells(th, 1)
				if p == pmem.NilAddr {
					continue
				}
				for _, b := range blocks {
					if b.payload == p {
						t.Fatalf("alias: %#x handed out twice while live", uint64(p))
					}
				}
				c := Cell(p, 0)
				v := rng.Uint64()
				th.Init(c, v)
				blocks = append(blocks, live{p, c, v})
			case 2: // update a live block
				if len(blocks) == 0 {
					continue
				}
				i := rng.Intn(len(blocks))
				blocks[i].val = rng.Uint64()
				th.Update(blocks[i].cell, blocks[i].val)
			case 3: // free a live block
				if len(blocks) == 0 {
					continue
				}
				i := rng.Intn(len(blocks))
				rt.Arena().Free(th, blocks[i].payload)
				delete(certified, uint64AddrKey(blocks[i].cell))
				blocks = append(blocks[:i], blocks[i+1:]...)
			case 4: // checkpoint: certify current values
				mustCheckpointSolo(t, rt)
				certified = map[pmem.Addr]uint64{}
				for _, b := range blocks {
					certified[uint64AddrKey(b.cell)] = b.val
				}
			}
		}

		// Crash with partial eviction and verify the certified values.
		h.EvictDirtyFraction(0.5, seed^0x5a5a)
		h.Crash()
		rt2, _, err := Recover(h, Config{Threads: 1}, 1)
		if err != nil {
			t.Fatal(err)
		}
		for addr, want := range certified {
			if got := rt2.Read(InCLLAt(addr)); got != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func uint64AddrKey(c InCLL) pmem.Addr { return c.Addr() }

func TestFreeOfGarbagePanics(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Free of a non-block address did not panic")
		}
	}()
	rt.Arena().Free(th, rt.Arena().DataBase()+64+pmem.LineSize*3)
}

package core

import (
	"os"
	"strings"
	"testing"

	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/psan"
)

func newSanitizedRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	cfg.Sanitize = true
	rt, err := NewRuntime(pmem.New(pmem.Config{Size: 8 << 20}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Sanitizer() == nil {
		t.Fatal("Config.Sanitize set but no sanitizer attached")
	}
	return rt
}

func violationsByRule(vs []psan.Violation, r psan.Rule) []psan.Violation {
	var out []psan.Violation
	for _, v := range vs {
		if v.Rule == r {
			out = append(out, v)
		}
	}
	return out
}

// The seeded commit-before-flush fault is the canonical rule-R1 scenario: a
// synchronous checkpoint publishes the epoch word while its tracked lines are
// still dirty. The sanitizer must name the commit, the epoch and the store.
func TestSanitizerCatchesCommitBeforeFlushFault(t *testing.T) {
	rt := newSanitizedRuntime(t, Config{Threads: 1})
	th := rt.Thread(0)
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)

	rt.SetCommitBeforeFlushFault(true)
	info := rt.CheckpointIdle()
	rt.SetCommitBeforeFlushFault(false)

	r1 := violationsByRule(rt.Sanitizer().Violations(), psan.RuleCommitUnflushed)
	if len(r1) == 0 {
		t.Fatal("commit-before-flush fault produced no commit-unflushed finding")
	}
	cellLine := pmem.LineOf(v.Addr())
	var hit *psan.Violation
	for i := range r1 {
		if r1[i].Line == cellLine {
			hit = &r1[i]
		}
	}
	if hit == nil {
		t.Fatalf("no finding names the initialised cell's line %d: %v", cellLine, r1)
	}
	if hit.Epoch != info.Epoch {
		t.Fatalf("finding epoch = %d, want the faulted commit's %d", hit.Epoch, info.Epoch)
	}
	// This test lives in package core, so its own frames are skipped by the
	// site filter; exact-site assertions live in the psan unit suite.
	if hit.StoreSite == "" || hit.StoreSite == "unknown" {
		t.Fatalf("store site = %q, want a resolved frame", hit.StoreSite)
	}

	// Control: the next, correctly ordered checkpoint adds nothing.
	before := len(rt.Sanitizer().Violations())
	th.Update(v, 2)
	rt.CheckpointIdle()
	if got := len(rt.Sanitizer().Violations()); got != before {
		t.Fatalf("clean checkpoint grew findings from %d to %d", before, got)
	}
}

// Regression fixture for a recovery bug this codebase shipped: finishInit
// must mark recovery-replayed addresses in the async pending bitmaps, or the
// first drain's test-and-clear skips their lines and commits an epoch that
// never flushed them. faultSkipReplayMarks re-seeds the bug; the sanitizer
// must convert the would-be silent data loss into a rule-R1 finding.
func TestSanitizerCatchesSkippedReplayMarks(t *testing.T) {
	run := func(t *testing.T, fault bool) []psan.Violation {
		t.Helper()
		h := pmem.New(pmem.Config{Size: 8 << 20})
		cfg := Config{Threads: 1, AsyncFlush: true, SerialFlush: true, Sanitize: true}
		rt, err := NewRuntime(h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		th := rt.Thread(0)
		v := Cell(rt.Arena().AllocCells(th, 1), 0)
		th.Init(v, 1)
		mustCheckpointSolo(t, rt)
		rt.WaitDrain() // v=1 durable

		// Touch v in the epoch the crash will interrupt, and force the whole
		// volatile image into NVMM so recovery sees the tagged cell and must
		// roll it back (and re-register it in the system flush list).
		th.Update(v, 2)
		h.EvictAll()
		h.Crash()

		faultSkipReplayMarks = fault
		rt2, rep, err := Recover(h, cfg, 0)
		faultSkipReplayMarks = false
		if err != nil {
			t.Fatal(err)
		}
		if rep.CellsRolledBack == 0 {
			t.Fatal("recovery rolled back nothing; the fixture never armed")
		}
		if got := rt2.Read(v); got != 1 {
			t.Fatalf("recovered value = %d, want 1", got)
		}

		// Resume in the failed epoch. The cell is already tagged with it, so
		// this store updates the record in place without re-registering —
		// the replayed registration is the line's only route into the drain.
		rt2.Thread(0).Update(v, 5)
		mustCheckpointSolo(t, rt2)
		rt2.WaitDrain()
		return rt2.Sanitizer().Violations()
	}

	t.Run("fault", func(t *testing.T) {
		vs := run(t, true)
		r1 := violationsByRule(vs, psan.RuleCommitUnflushed)
		if len(r1) == 0 {
			t.Fatalf("skipped replay marks went undetected; findings: %v", vs)
		}
	})
	t.Run("control", func(t *testing.T) {
		if vs := run(t, false); len(vs) != 0 {
			t.Fatalf("clean recovery produced findings: %v", vs)
		}
	})
}

// Regression fixture for the other shipped recovery bug: Recover must replay
// the collision log strictly before walking the carved region. The log holds
// the bump cursor's last durable value; the rolled-back (not-yet-durable)
// bump extends the walk into blocks whose headers never reached NVMM.
// faultWalkBeforeReplay re-seeds the inversion, which must surface as a
// corrupt-block-header error rather than a silent mis-scan.
func TestRecoverWalkBeforeReplayRegression(t *testing.T) {
	rt := newAsyncRuntime(t, 1, false)
	h := rt.Heap()
	th := rt.Thread(0)

	// Warm cut: one carve makes the bump cursor's current value durable.
	v := Cell(rt.Arena().AllocCells(th, 1), 0)
	th.Init(v, 1)
	mustCheckpointSolo(t, rt)
	rt.WaitDrain()

	// Epoch N: carve fresh blocks. Their headers stay in the cache — the
	// drain that owes them to NVMM is about to be stalled.
	for i := 0; i < 4; i++ {
		th.Init(Cell(rt.Arena().AllocCells(th, 1), 0), uint64(i))
	}
	entered, release := stallDrain(rt)
	mustCheckpointSolo(t, rt)
	<-entered

	// Epoch N+1: another carve double-epoch-collides on the bump cell,
	// evicting the last durable bump from its backup into the collision log.
	th.Init(Cell(rt.Arena().AllocCells(th, 1), 0), 99)

	// The dangerous NVMM image: the bump cell's post-collision state (its
	// backup now holds epoch N's not-yet-durable cursor) reaches NVMM — say,
	// by cache eviction — while epoch N's block headers do not.
	f := h.NewFlusher()
	f.CLWB(rt.Arena().bump.Addr())
	f.SFence()

	h.Crash() // epoch N's block headers never reached NVMM
	close(release)
	rt.WaitDrain()

	faultWalkBeforeReplay = true
	_, _, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	faultWalkBeforeReplay = false
	if err == nil || !strings.Contains(err.Error(), "corrupt block header") {
		t.Fatalf("walk-before-replay recovery error = %v, want a corrupt block header", err)
	}

	// The correct order recovers, applies the log, and lands on the warm cut.
	rt2, rep, err := Recover(h, Config{Threads: 1, AsyncFlush: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DrainInterrupted {
		t.Fatal("recovery did not detect the interrupted drain")
	}
	if rep.CollisionsApplied == 0 {
		t.Fatal("no collision-log entries applied; the fixture never armed")
	}
	if got := rt2.Read(v); got != 1 {
		t.Fatalf("recovered value = %d, want 1", got)
	}
}

// The tracked-store fast path must stay allocation-free in steady state,
// with and without the shadow heap attached: the sanitizer uses fixed-size
// stack captures and preallocated line state precisely so that turning it on
// does not change the workload's allocation behaviour.
func TestStoreTrackedZeroAllocs(t *testing.T) {
	if os.Getenv("RESPCT_SANITIZE") != "" {
		t.Skip("RESPCT_SANITIZE rebuilds runtimes sanitized; allocation baseline not comparable")
	}
	check := func(t *testing.T, rt *Runtime) {
		t.Helper()
		th := rt.Thread(0)
		a := rt.Arena().AllocRaw(th, 8)
		th.StoreTracked(a, 1) // warm the tracking list and line cache
		if avg := testing.AllocsPerRun(1000, func() { th.StoreTracked(a, 2) }); avg != 0 {
			t.Fatalf("StoreTracked allocates %.2f per op, want 0", avg)
		}
	}
	t.Run("plain", func(t *testing.T) {
		check(t, newTestRuntime(t, 1, 0))
	})
	t.Run("sanitized", func(t *testing.T) {
		check(t, newSanitizedRuntime(t, Config{Threads: 1}))
	})
}

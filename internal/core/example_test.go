package core_test

import (
	"fmt"
	"log"
	"sync"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
)

// Example walks the full ResPCT lifecycle: allocate an InCLL variable,
// update it across epochs, checkpoint, crash, recover.
func Example() {
	heap := pmem.New(pmem.NVMMConfig(16 << 20))
	rt, err := core.NewRuntime(heap, core.Config{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	t := rt.Thread(0)

	block := rt.Arena().AllocCells(t, 1)
	counter := core.Cell(block, 0)
	t.Init(counter, 0)
	t.Update(rt.RootInCLL(0), uint64(block)) // publish for recovery

	for i := 0; i < 10; i++ {
		t.Update(counter, rt.Read(counter)+1)
		t.RP(1) // restart point after each logical block of work
	}
	rt.CheckpointIdle() // counter=10 becomes durable

	t.Update(counter, 999) // doomed: the crash destroys this epoch
	heap.EvictAll()        // even if the hardware wrote it back already
	heap.Crash()

	rt2, _, err := core.Recover(heap, core.Config{Threads: 1}, 1)
	if err != nil {
		log.Fatal(err)
	}
	recovered := core.Cell(rt2.ReadAddr(rt2.RootInCLL(0)), 0)
	fmt.Println("recovered:", rt2.Read(recovered))
	// Output: recovered: 10
}

// ExampleThread_CondWait shows the paper's Fig. 7 protocol for waits on
// condition variables: an RP right before the critical section and the
// allow/prevent pair around the wait, bundled by CondWait.
func ExampleThread_CondWait() {
	heap := pmem.New(pmem.NVMMConfig(16 << 20))
	rt, _ := core.NewRuntime(heap, core.Config{Threads: 2})

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	ready := false

	done := make(chan struct{})
	go func() { // consumer: thread 0
		t := rt.Thread(0)
		t.RP(1) // RP immediately before the critical section
		mu.Lock()
		for !ready {
			t.CondWait(cond, &mu)
		}
		mu.Unlock()
		t.CheckpointAllow()
		close(done)
	}()
	go func() { // producer: thread 1
		t := rt.Thread(1)
		mu.Lock()
		ready = true
		mu.Unlock()
		cond.Signal()
		t.CheckpointAllow()
	}()
	<-done
	fmt.Println("pipeline finished without deadlocking a checkpoint")
	// Output: pipeline finished without deadlocking a checkpoint
}

// ExampleThread_StoreTracked shows the paper's rule for RAW-only persistent
// data (§3.3.2): data written before it is ever read needs tracking but no
// undo log — plain stores plus AddModified, here via the StoreTracked
// shorthand (the add_modified call of the paper's Fig. 6b).
func ExampleThread_StoreTracked() {
	heap := pmem.New(pmem.NVMMConfig(16 << 20))
	rt, _ := core.NewRuntime(heap, core.Config{Threads: 1})
	t := rt.Thread(0)

	buf := rt.Arena().AllocRaw(t, 4) // a write-once result buffer
	for i := 0; i < 4; i++ {
		t.StoreTracked(buf+pmem.Addr(i*8), uint64(i)*i2(i))
	}
	rt.CheckpointIdle()
	fmt.Println("durable:", rt.Heap().LoadPersistent64(buf+24))
	// Output: durable: 9
}

func i2(i int) uint64 { return uint64(i) }

package core

import (
	"testing"

	"github.com/respct/respct/internal/pmem"
)

// crashAndRecover simulates a crash with a given fraction of dirty lines
// already evicted to NVMM, then recovers.
func crashAndRecover(t *testing.T, rt *Runtime, threads int, evictFrac float64, seed int64, parallelism int) (*Runtime, *RecoveryReport) {
	t.Helper()
	h := rt.Heap()
	if evictFrac >= 1 {
		h.EvictAll()
	} else if evictFrac > 0 {
		h.EvictDirtyFraction(evictFrac, seed)
	}
	h.Crash()
	rt2, rep, err := Recover(h, Config{Threads: threads}, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	return rt2, rep
}

func TestRecoverRollsBackCrashedEpoch(t *testing.T) {
	for _, frac := range []float64{0, 0.3, 0.7, 1} {
		rt := newTestRuntime(t, 1, 0)
		th := rt.Thread(0)
		p := rt.Arena().AllocCells(th, 2)
		a, b := Cell(p, 0), Cell(p, 1)
		th.Init(a, 10)
		th.Init(b, 20)
		mustCheckpointSolo(t, rt) // epoch 2 -> 3, values 10/20 durable

		th.Update(a, 11) // epoch 3 work, doomed
		th.Update(b, 21)
		rt2, rep := crashAndRecover(t, rt, 1, frac, 99, 1)
		if rep.FailedEpoch != 3 {
			t.Fatalf("frac %v: failed epoch %d", frac, rep.FailedEpoch)
		}
		if got := rt2.Read(a); got != 10 {
			t.Fatalf("frac %v: a = %d, want 10", frac, got)
		}
		if got := rt2.Read(b); got != 20 {
			t.Fatalf("frac %v: b = %d, want 20", frac, got)
		}
		if rt2.Epoch() != 3 {
			t.Fatalf("frac %v: resumed epoch = %d, want 3 (the failed epoch)", frac, rt2.Epoch())
		}
	}
}

func TestRecoverKeepsCompletedEpochs(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	p := rt.Arena().AllocCells(th, 1)
	v := Cell(p, 0)
	th.Init(v, 1)
	mustCheckpointSolo(t, rt)
	th.Update(v, 2)
	mustCheckpointSolo(t, rt)
	th.Update(v, 3)
	mustCheckpointSolo(t, rt) // 3 is durable
	th.Update(v, 4)           // doomed
	rt2, _ := crashAndRecover(t, rt, 1, 0.5, 7, 1)
	if got := rt2.Read(v); got != 3 {
		t.Fatalf("recovered %d, want 3", got)
	}
}

func TestRecoverIsIdempotentAcrossRepeatedCrashes(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	p := rt.Arena().AllocCells(th, 1)
	v := Cell(p, 0)
	th.Init(v, 100)
	mustCheckpointSolo(t, rt)
	th.Update(v, 200)
	rt2, _ := crashAndRecover(t, rt, 1, 0.6, 3, 1)
	if rt2.Read(Cell(p, 0)) != 100 {
		t.Fatal("first recovery wrong")
	}
	// Crash again immediately, before any checkpoint in the resumed epoch.
	th2 := rt2.Thread(0)
	th2.Update(Cell(p, 0), 300)
	rt3, rep := crashAndRecover(t, rt2, 1, 0.6, 4, 1)
	if rep.FailedEpoch != 3 {
		t.Fatalf("second crash failed epoch = %d, want 3", rep.FailedEpoch)
	}
	if got := rt3.Read(Cell(p, 0)); got != 100 {
		t.Fatalf("second recovery = %d, want 100", got)
	}
}

func TestRecoverMakesPersistentImageConsistent(t *testing.T) {
	// Recovery flushes rolled-back cells, so the persistent image itself
	// holds the checkpointed state right after recovery.
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	p := rt.Arena().AllocCells(th, 1)
	v := Cell(p, 0)
	th.Init(v, 5)
	mustCheckpointSolo(t, rt)
	th.Update(v, 6)
	rt.Heap().EvictAll() // crashed value 6 is in NVMM
	rt.Heap().Crash()
	rt2, _, err := Recover(rt.Heap(), Config{Threads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Heap().LoadPersistent64(v.Addr()); got != 5 {
		t.Fatalf("persistent record after recovery = %d, want 5", got)
	}
}

func TestRecoverAllocatorRollback(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	p1 := rt.Arena().AllocCells(th, 1)
	th.Init(Cell(p1, 0), 1)
	mustCheckpointSolo(t, rt)
	usedBefore := rt.Arena().Stats().Used

	// Allocate more in the epoch that will crash.
	for i := 0; i < 10; i++ {
		p := rt.Arena().AllocCells(th, 4)
		if p == pmem.NilAddr {
			t.Fatal("alloc failed")
		}
		th.Init(Cell(p, 0), uint64(i))
	}
	rt2, _ := crashAndRecover(t, rt, 1, 0.5, 11, 1)
	if got := rt2.Arena().Stats().Used; got != usedBefore {
		t.Fatalf("arena used after recovery = %d, want %d (crashed carves rolled back)", got, usedBefore)
	}
	// The surviving block is intact and the allocator can carve again.
	if got := rt2.Read(Cell(p1, 0)); got != 1 {
		t.Fatalf("survivor cell = %d", got)
	}
	th2 := rt2.Thread(0)
	p2 := rt2.Arena().AllocCells(th2, 1)
	if p2 == pmem.NilAddr {
		t.Fatal("post-recovery alloc failed")
	}
	th2.Init(Cell(p2, 0), 77)
	if rt2.Read(Cell(p2, 0)) != 77 {
		t.Fatal("post-recovery block unusable")
	}
}

func TestFreeIsDeferredToNextEpoch(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	p := rt.Arena().AllocCells(th, 1)
	th.Init(Cell(p, 0), 42)
	rt.Arena().Free(th, p)
	// Same epoch: the block must not be recycled.
	q := rt.Arena().AllocCells(th, 1)
	if q == p {
		t.Fatal("block recycled in the epoch that freed it")
	}
	mustCheckpointSolo(t, rt)
	// Next epoch: now it may be recycled.
	r := rt.Arena().AllocCells(th, 1)
	if r != p {
		t.Fatalf("block not recycled after checkpoint: got %#x, want %#x", uint64(r), uint64(p))
	}
}

func TestFreeRolledBackOnCrash(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	p := rt.Arena().AllocCells(th, 1)
	th.Init(Cell(p, 0), 42)
	mustCheckpointSolo(t, rt) // block durable, epoch 2

	rt.Arena().Free(th, p)
	mustCheckpointSolo(t, rt) // free applied at start of epoch 3, not yet durable...
	// The push itself happened in epoch 3; crash epoch 3: push rolls back.
	rt2, _ := crashAndRecover(t, rt, 1, 1, 5, 1)
	th2 := rt2.Thread(0)
	// The block is NOT on the free list (push rolled back): allocating the
	// same class must carve fresh, and p's contents are intact.
	q := rt2.Arena().AllocCells(th2, 1)
	if q == p {
		t.Fatal("rolled-back free still recycled the block")
	}
	if got := rt2.Read(Cell(p, 0)); got != 42 {
		t.Fatalf("freed-then-rolled-back block content = %d, want 42", got)
	}
}

func TestRecycleDifferentLayoutCrashSafe(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	// Block with 2 cells (class 64*... header 64 + 64 payload -> class 1: 128B).
	p := rt.Arena().Alloc(th, 2, 0)
	th.Init(Cell(p, 0), 7)
	th.Init(Cell(p, 1), 8)
	rt.Arena().Free(th, p)
	mustCheckpointSolo(t, rt)
	mustCheckpointSolo(t, rt) // free push durable

	// Recycle as raw block (same class, different shape) in an epoch that
	// crashes: the layout change must roll back so the recovery scan walks
	// the region with the old shape and cannot misinterpret the torn raw
	// payload as live cells.
	q := rt.Arena().Alloc(th, 0, 8)
	if q != p {
		t.Fatalf("expected recycle of %#x, got %#x", uint64(p), uint64(q))
	}
	th.StoreTracked(q, 0xFFFFFFFFFFFFFFFF)
	rt2, _ := crashAndRecover(t, rt, 1, 1, 13, 1)
	th2 := rt2.Thread(0)
	// The recovery scan must have used the rolled-back 2-cell layout.
	h := rt2.Heap()
	gotLayout := h.Load64(p - 64 + 24) // header layout record
	if class, cells, raw := unpackLayout(gotLayout); cells != 2 || raw != 0 {
		t.Fatalf("layout after recovery = class %d cells %d raw %d, want 2 cells", class, cells, raw)
	}
	// The block itself leaks (its free lived only in the crashed process's
	// magazine) — a fresh allocation must not alias it, and the recovered
	// heap stays fully operational.
	r := rt2.Arena().Alloc(th2, 2, 0)
	if r == p {
		t.Fatalf("leaked block %#x was handed out again", uint64(p))
	}
	th2.Init(Cell(r, 0), 1)
	th2.Init(Cell(r, 1), 2)
	if rt2.Read(Cell(r, 0)) != 1 || rt2.Read(Cell(r, 1)) != 2 {
		t.Fatal("post-recovery allocation unusable")
	}
}

func TestRecoverUnformattedHeapFails(t *testing.T) {
	h := pmem.New(pmem.Config{Size: 8 << 20})
	h.Crash()
	if _, _, err := Recover(h, Config{Threads: 1}, 1); err == nil {
		t.Fatal("Recover accepted an unformatted heap")
	}
}

func TestRecoverParallelMatchesSerial(t *testing.T) {
	build := func() *Runtime {
		h := pmem.New(pmem.Config{Size: 32 << 20, Seed: 5})
		rt, err := NewRuntime(h, Config{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		th := rt.Thread(0)
		var cells []InCLL
		for i := 0; i < 500; i++ {
			p := rt.Arena().AllocCells(th, 2)
			c := Cell(p, 0)
			th.Init(c, uint64(i))
			cells = append(cells, c)
		}
		mustCheckpointSolo(t, rt)
		for i, c := range cells {
			if i%3 == 0 {
				th.Update(c, uint64(i)+1000)
			}
		}
		rt.Heap().EvictDirtyFraction(0.5, 77)
		rt.Heap().Crash()
		return rt
	}

	rtSerial := build()
	serial, repS, err := Recover(rtSerial.Heap(), Config{Threads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rtPar := build()
	parallel, repP, err := Recover(rtPar.Heap(), Config{Threads: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if repS.CellsScanned != repP.CellsScanned {
		t.Fatalf("scanned %d vs %d cells", repS.CellsScanned, repP.CellsScanned)
	}
	// Both recoveries must land on identical persistent state for the data
	// region (same deterministic pre-crash image).
	h1, h2 := serial.Heap(), parallel.Heap()
	for a := serial.Arena().DataBase(); a < pmem.Addr(h1.Size()); a += 8 {
		if v1, v2 := h1.Load64(a), h2.Load64(a); v1 != v2 {
			t.Fatalf("divergence at %#x: %d vs %d", uint64(a), v1, v2)
		}
	}
}

func TestRPIDRecoveredAcrossCrash(t *testing.T) {
	rt := newTestRuntime(t, 2, 0)
	t0, t1 := rt.Thread(0), rt.Thread(1)
	t0.Update(t0.RPID(), 1111)
	t1.Update(t1.RPID(), 2222)
	mustCheckpointSolo(t, rt)
	t0.Update(t0.RPID(), 3333) // doomed
	rt2, _ := crashAndRecover(t, rt, 2, 1, 9, 1)
	if got := rt2.Read(rt2.Thread(0).RPID()); got != 1111 {
		t.Fatalf("thread 0 RP id = %d, want 1111", got)
	}
	if got := rt2.Read(rt2.Thread(1).RPID()); got != 2222 {
		t.Fatalf("thread 1 RP id = %d, want 2222", got)
	}
}

func TestRecoverGrowsThreadSet(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	th.Update(th.RPID(), 5)
	mustCheckpointSolo(t, rt)
	rt.Heap().Crash()
	// Recover with more threads than the original run.
	rt2, _, err := Recover(rt.Heap(), Config{Threads: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Read(rt2.Thread(0).RPID()); got != 5 {
		t.Fatalf("old thread RP id = %d", got)
	}
	// New threads got fresh cells.
	if rt2.Thread(2).RPID().IsNil() {
		t.Fatal("new thread has no RP cell")
	}
}

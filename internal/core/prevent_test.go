package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// countingLocker counts Lock/Unlock calls around a real mutex so tests can
// observe CheckpointPrevent's hand-off of a condition variable's mutex.
type countingLocker struct {
	mu      sync.Mutex
	locks   atomic.Int32
	unlocks atomic.Int32
}

func (l *countingLocker) Lock()   { l.mu.Lock(); l.locks.Add(1) }
func (l *countingLocker) Unlock() { l.unlocks.Add(1); l.mu.Unlock() }

// TestCheckpointPreventHandsOffMutex drives the in-flight-checkpoint branch
// of CheckpointPrevent deterministically: with the timer raised, Prevent must
// re-allow the checkpoint, release the caller's mutex so parked threads that
// need it can make progress, spin until the timer drops, and re-acquire the
// mutex exactly once.
func TestCheckpointPreventHandsOffMutex(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)

	cmu := &countingLocker{}
	cmu.Lock() // the mutex a condition wait would have re-acquired
	rt.timer.Store(true)

	handoff := make(chan struct{})
	go func() {
		defer close(handoff)
		// Wait for Prevent to release the mutex, then prove another thread
		// can take it while the worker spins on the timer.
		for cmu.unlocks.Load() == 0 {
			runtime.Gosched()
		}
		cmu.Lock()
		if rt.parked.Load() != 1 {
			t.Error("worker not re-parked while waiting out the checkpoint")
		}
		cmu.Unlock()
		rt.timer.Store(false)
	}()

	th.CheckpointPrevent(cmu)
	<-handoff

	// Worker: 1 initial lock + 1 re-acquire; observer: 1 lock.
	if got := cmu.locks.Load(); got != 3 {
		t.Fatalf("lock count = %d, want 3", got)
	}
	if got := cmu.unlocks.Load(); got != 2 {
		t.Fatalf("unlock count = %d, want 2 (worker hand-off + observer)", got)
	}
	if got := rt.parked.Load(); got != 0 {
		t.Fatalf("parked count = %d after Prevent, want 0", got)
	}
	cmu.Unlock() // still held by the worker, as on the normal return path
}

// TestCondWaitHandsOffMutexDuringCheckpoint runs the same hand-off end to end:
// a worker in CondWait is woken while a real checkpoint is in flight (from the
// quiesced hook, so the timing is deterministic), and its CheckpointPrevent
// must release the cond's mutex before waiting the checkpoint out.
func TestCondWaitHandsOffMutexDuringCheckpoint(t *testing.T) {
	rt := newTestRuntime(t, 2, 0)
	th0, th1 := rt.Thread(0), rt.Thread(1)

	cmu := &countingLocker{}
	cond := sync.NewCond(cmu)
	woke := make(chan struct{})
	go func() {
		cmu.Lock() // lock 1
		th0.CondWait(cond, cmu)
		cmu.Unlock()
		close(woke)
	}()
	// Wait until the worker is inside cond.Wait (its CheckpointAllow parked it
	// and the mutex is free again).
	for rt.parked.Load() == 0 {
		runtime.Gosched()
	}
	cmu.Lock()
	cmu.Unlock()

	rt.SetQuiescedHook(func(uint64) {
		// Both threads are quiesced and the timer is up. Wake the waiter: it
		// re-acquires the free mutex, enters CheckpointPrevent, sees the
		// in-flight checkpoint and must hand the mutex back — unlock #3,
		// after cond.Wait's internal unlock and main's probe.
		cond.Signal()
		for cmu.unlocks.Load() < 3 {
			runtime.Gosched()
		}
		cmu.Lock() // provable only because Prevent released it
		cmu.Unlock()
	})

	th1.CheckpointAllow()
	rt.Checkpoint()
	th1.CheckpointPrevent(nil)
	<-woke

	// Worker: initial + cond.Wait re-acquire + Prevent re-acquire; hook: 1;
	// main's probe: 1.
	if got := cmu.locks.Load(); got != 5 {
		t.Fatalf("lock count = %d, want 5", got)
	}
	if got := rt.parked.Load(); got != 0 {
		t.Fatalf("parked count = %d, want 0", got)
	}
}

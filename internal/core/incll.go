package core

import (
	"fmt"
	"math"

	"github.com/respct/respct/internal/pmem"
)

// InCLL cell layout within its cache line (paper Fig. 2):
//
//	word 0: record   — the current value
//	word 1: backup   — the value before the first update of the epoch
//	word 2: epochID  — the epoch of the last first-update
//
// CellSize is the stride between packed InCLL cells. Two cells fit in a
// cache line; a cell never straddles a line boundary.
const (
	cellRecordOff = 0
	cellBackupOff = 8
	cellEpochOff  = 16

	// CellSize is the footprint of one InCLL cell in bytes.
	CellSize = 32
)

// InCLL is a handle to an in-cache-line-logged 64-bit variable in NVMM. The
// zero value is invalid; obtain handles from Arena.Alloc, Runtime.RootInCLL
// or InCLLAt.
type InCLL struct {
	addr pmem.Addr
}

// InCLLAt wraps the InCLL cell starting at a. The cell's three words must
// lie within one cache line.
func InCLLAt(a pmem.Addr) InCLL {
	if a%pmem.WordSize != 0 {
		panic(fmt.Sprintf("core: unaligned InCLL address %#x", uint64(a)))
	}
	if uint64(a)%pmem.LineSize > pmem.LineSize-3*pmem.WordSize {
		panic(fmt.Sprintf("core: InCLL cell at %#x would straddle a cache line", uint64(a)))
	}
	return InCLL{addr: a}
}

// Addr returns the address of the cell's record word.
func (v InCLL) Addr() pmem.Addr { return v.addr }

// IsNil reports whether the handle is the zero handle.
func (v InCLL) IsNil() bool { return v.addr == pmem.NilAddr }

// Init initialises an InCLL variable (paper init_InCLL, Fig. 4 lines 19-23):
// record and backup take val, the epoch tag takes the current epoch, and the
// cell is registered in the thread's flush list.
//
// Init is only correct for cells inside a block freshly obtained from the
// arena in the current epoch: such blocks vanish wholesale if the epoch
// crashes (the allocator state rolls back), so the cell's backup never
// matters. For a pre-existing cell — a heap root, or any cell that survived
// a checkpoint — use Update, whose undo log restores the previous value.
func (t *Thread) Init(v InCLL, val uint64) {
	h := t.rt.heap
	h.Store64(v.addr+cellRecordOff, val)
	h.Store64(v.addr+cellBackupOff, val)
	h.Store64(v.addr+cellEpochOff, t.epoch())
	t.AddModified(v.addr)
}

// Update replaces the usual store to an InCLL variable (paper update_InCLL,
// Fig. 4 lines 24-29). On the first update of the epoch it copies the
// current value into the backup word and tags the cell with the epoch —
// both land in the same cache line as the value, so PCSO guarantees the undo
// information can never trail the value into NVMM — and appends the cell to
// the thread's to-be-flushed list. The caller must hold the lock protecting
// the variable (§2.1); concurrent Updates of one cell are a programming
// error, exactly as in the paper.
func (t *Thread) Update(v InCLL, val uint64) {
	h := t.rt.heap
	// The thread's cached epoch is exact: the epoch only advances while the
	// thread is parked, and unparking refreshes the cache (track.go).
	epoch := t.epoch()
	if tag := h.Load64(v.addr + cellEpochOff); tag != epoch {
		if t.rt.asyncOn {
			// A drain may still owe this cell's line to NVMM, and if the
			// cell was modified in the epoch being drained, the backup we
			// are about to overwrite is the only copy of the previous
			// durable cut's value — see async.go.
			t.collideCell(v.addr, tag)
		}
		h.Store64(v.addr+cellBackupOff, h.Load64(v.addr+cellRecordOff))
		h.Store64(v.addr+cellEpochOff, epoch)
		t.AddModified(v.addr)
	} else if t.rt.cfg.DisableTracking {
		// Ablation mode: behave like a tracker without the InCLL epoch
		// optimisation — every update appends, duplicates and all.
		t.AddModified(v.addr)
	}
	h.Store64(v.addr+cellRecordOff, val)
}

// Read returns the current value of an InCLL variable. Reads need no
// logging or tracking; any goroutine holding the appropriate lock may read.
func (rt *Runtime) Read(v InCLL) uint64 {
	return rt.heap.Load64(v.addr + cellRecordOff)
}

// Read is a convenience alias for Runtime.Read on the thread's runtime.
func (t *Thread) Read(v InCLL) uint64 { return t.rt.Read(v) }

// EpochOf returns the cell's epoch tag (the epoch of its last first-update).
func (rt *Runtime) EpochOf(v InCLL) uint64 {
	return rt.heap.Load64(v.addr + cellEpochOff)
}

// BackupOf returns the cell's logged value.
func (rt *Runtime) BackupOf(v InCLL) uint64 {
	return rt.heap.Load64(v.addr + cellBackupOff)
}

// Typed views. All InCLL cells hold one machine word; these helpers
// translate common Go types to and from that word.

// UpdateInt is Update for int64 values.
func (t *Thread) UpdateInt(v InCLL, val int64) { t.Update(v, uint64(val)) }

// ReadInt reads an InCLL cell as int64.
func (rt *Runtime) ReadInt(v InCLL) int64 { return int64(rt.Read(v)) }

// ReadInt reads an InCLL cell as int64.
func (t *Thread) ReadInt(v InCLL) int64 { return int64(t.Read(v)) }

// InitInt is Init for int64 values.
func (t *Thread) InitInt(v InCLL, val int64) { t.Init(v, uint64(val)) }

// UpdateFloat is Update for float64 values.
func (t *Thread) UpdateFloat(v InCLL, val float64) { t.Update(v, math.Float64bits(val)) }

// ReadFloat reads an InCLL cell as float64.
func (rt *Runtime) ReadFloat(v InCLL) float64 { return math.Float64frombits(rt.Read(v)) }

// ReadFloat reads an InCLL cell as float64.
func (t *Thread) ReadFloat(v InCLL) float64 { return t.rt.ReadFloat(v) }

// InitFloat is Init for float64 values.
func (t *Thread) InitFloat(v InCLL, val float64) { t.Init(v, math.Float64bits(val)) }

// UpdateAddr is Update for persistent pointers.
func (t *Thread) UpdateAddr(v InCLL, val pmem.Addr) { t.Update(v, uint64(val)) }

// ReadAddr reads an InCLL cell as a persistent pointer.
func (rt *Runtime) ReadAddr(v InCLL) pmem.Addr { return pmem.Addr(rt.Read(v)) }

// ReadAddr reads an InCLL cell as a persistent pointer.
func (t *Thread) ReadAddr(v InCLL) pmem.Addr { return pmem.Addr(t.Read(v)) }

// InitAddr is Init for persistent pointers.
func (t *Thread) InitAddr(v InCLL, val pmem.Addr) { t.Init(v, uint64(val)) }

// rollbackCell applies the recovery rule (paper Fig. 5 lines 62-64) to the
// cell at a, using the persistent image as both source and target: callers
// run it after Heap.Reopen, so the volatile image equals the persistent one.
//
// drained handles a crash inside an async drain window: the failed epoch N
// never durably committed, but workers were already running epoch N+1, so
// cells tagged N+1 may have reached NVMM too (evictions, collision flushes).
// Restoring their backup and retagging with N recovers them: for a cell
// untouched during epoch N the backup is its value at the last durable cut,
// and a cell modified in both N and N+1 — whose backup is the not-yet-durable
// cut-N value — is repaired afterwards from the collision log (see Recover).
// The retag matters: execution resumes in epoch N, and a tag of N+1 would
// make the cell's next update in any epoch ≤ N+1 skip its undo logging.
func rollbackCell(h *pmem.Heap, a pmem.Addr, failedEpoch uint64, drained bool) bool {
	switch tag := h.Load64(a + cellEpochOff); {
	case tag == failedEpoch:
		h.Store64(a+cellRecordOff, h.Load64(a+cellBackupOff))
		return true
	case drained && tag == failedEpoch+1:
		h.Store64(a+cellRecordOff, h.Load64(a+cellBackupOff))
		h.Store64(a+cellEpochOff, failedEpoch)
		return true
	}
	return false
}

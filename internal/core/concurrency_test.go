package core

import (
	"sync"
	"testing"
	"time"

	"github.com/respct/respct/internal/pmem"
)

func TestCheckpointWaitsForAllThreads(t *testing.T) {
	rt := newTestRuntime(t, 4, 0)
	const opsPerThread = 200

	var wg sync.WaitGroup
	cells := make([]InCLL, 4)
	for i := 0; i < 4; i++ {
		th := rt.Thread(i)
		p := rt.Arena().AllocCells(th, 1)
		cells[i] = Cell(p, 0)
		th.Init(cells[i], 0)
	}

	done := make(chan struct{})
	go func() {
		// Fire checkpoints continuously while workers run.
		for {
			select {
			case <-done:
				return
			default:
				rt.Checkpoint()
			}
		}
	}()

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := rt.Thread(i)
			for op := 0; op < opsPerThread; op++ {
				th.Update(cells[i], uint64(op+1))
				th.RP(uint64(i*1000 + op))
			}
			th.CheckpointAllow()
		}(i)
	}
	wg.Wait()
	close(done)
	// Give the checkpoint goroutine a chance to finish its last iteration.
	rt.ckptMu.Lock()
	rt.ckptMu.Unlock()

	for i := 0; i < 4; i++ {
		if got := rt.Read(cells[i]); got != opsPerThread {
			t.Fatalf("thread %d cell = %d, want %d", i, got, opsPerThread)
		}
	}
	if rt.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoint completed")
	}
}

func TestRPParksDuringCheckpoint(t *testing.T) {
	rt := newTestRuntime(t, 2, 0)
	t1 := rt.Thread(1)
	t1.CheckpointAllow() // thread 1 is "blocked elsewhere"

	started := make(chan struct{})
	released := make(chan struct{})
	go func() {
		th := rt.Thread(0)
		close(started)
		th.RP(1) // no checkpoint pending yet: must not block
		// Trigger our own visibility of the parked state:
		for !rt.timer.Load() {
			time.Sleep(time.Millisecond)
		}
		th.RP(2) // parks until the checkpoint finishes
		close(released)
	}()
	<-started
	rt.Checkpoint()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never released from RP after checkpoint")
	}
	if got := rt.Read(rt.Thread(0).RPID()); got != 2 {
		t.Fatalf("persistent RP id = %d, want 2", got)
	}
}

func TestCondVarProtocolNoDeadlock(t *testing.T) {
	// A consumer waits on a condition variable; a producer signals it. A
	// checkpoint fires while the consumer is blocked. Without the Fig. 7
	// allow/prevent protocol this deadlocks; with it, everything finishes.
	rt := newTestRuntime(t, 2, 0)
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	queue := 0

	cons := rt.Thread(0)
	prod := rt.Thread(1)
	p := rt.Arena().AllocCells(cons, 1)
	consumed := Cell(p, 0)
	cons.Init(consumed, 0)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // consumer
		defer wg.Done()
		for got := 0; got < 3; {
			cons.RP(10) // RP immediately before the critical section (Fig. 7)
			mu.Lock()
			for queue == 0 {
				cons.CondWait(cond, &mu)
			}
			queue--
			got++
			cons.Update(consumed, uint64(got))
			mu.Unlock()
		}
		cons.CheckpointAllow()
	}()
	go func() { // producer
		defer wg.Done()
		for i := 0; i < 3; i++ {
			prod.RP(20)
			mu.Lock()
			queue++
			mu.Unlock()
			cond.Signal()
			// Force a checkpoint between productions so some land while
			// the consumer is parked in cond_wait. The producer drives the
			// checkpoint itself, so it must open its own allow window (a
			// worker can never be gated on itself).
			prod.CheckpointAllow()
			rt.Checkpoint()
			prod.CheckpointPrevent(nil)
		}
		prod.CheckpointAllow()
	}()

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("condition-variable protocol deadlocked")
	}
	if got := rt.Read(consumed); got != 3 {
		t.Fatalf("consumed = %d, want 3", got)
	}
}

func TestCheckpointerPeriodic(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	p := rt.Arena().AllocCells(th, 1)
	v := Cell(p, 0)
	th.Init(v, 0)

	ck := rt.StartCheckpointer(5 * time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := uint64(0)
		for {
			select {
			case <-stop:
				th.CheckpointAllow()
				return
			default:
			}
			i++
			th.Update(v, i)
			th.RP(1)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	ck.Stop()

	s := rt.Stats()
	if s.Checkpoints < 3 {
		t.Fatalf("only %d checkpoints in 100ms at 5ms period", s.Checkpoints)
	}
	if ep := ck.EffectivePeriod(); ep < 4*time.Millisecond {
		t.Fatalf("effective period %v below interval", ep)
	}
	// The last completed checkpoint's value is durable.
	if got := rt.Heap().LoadPersistent64(v.Addr()); got == 0 {
		t.Fatal("no value ever persisted")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	rt := newTestRuntime(t, 4, 32<<20)
	var wg sync.WaitGroup
	stopCk := make(chan struct{})
	var ckWg sync.WaitGroup
	ckWg.Add(1)
	go func() {
		defer ckWg.Done()
		for {
			select {
			case <-stopCk:
				return
			default:
				rt.Checkpoint()
			}
		}
	}()

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := rt.Thread(i)
			live := make([]pmem.Addr, 0, 16)
			for op := 0; op < 300; op++ {
				if len(live) > 8 {
					rt.Arena().Free(th, live[0])
					live = live[1:]
				}
				p := rt.Arena().AllocCells(th, 1)
				if p == pmem.NilAddr {
					t.Error("heap exhausted")
					break
				}
				th.Init(Cell(p, 0), uint64(op))
				live = append(live, p)
				th.RP(uint64(op))
			}
			th.CheckpointAllow()
		}(i)
	}
	wg.Wait()
	close(stopCk)
	ckWg.Wait()

	st := rt.Arena().Stats()
	if st.Allocs < 1200 {
		t.Fatalf("allocs = %d", st.Allocs)
	}
	if st.Frees == 0 {
		t.Fatal("no frees recorded")
	}
}

func TestCheckpointerHistory(t *testing.T) {
	rt := newTestRuntime(t, 1, 0)
	th := rt.Thread(0)
	th.CheckpointAllow()
	ck := rt.StartCheckpointer(2 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	ck.Stop()
	hist := ck.History()
	if len(hist) < 2 {
		t.Fatalf("history has %d records", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Epoch <= hist[i-1].Epoch {
			t.Fatalf("history out of order at %d: %d <= %d", i, hist[i].Epoch, hist[i-1].Epoch)
		}
	}
	if ck.MaxPause() <= 0 {
		t.Fatal("max pause not recorded")
	}
}

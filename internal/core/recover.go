package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/telemetry"
)

// RecoveryReport describes what a recovery pass did.
type RecoveryReport struct {
	FailedEpoch     uint64        // epoch the crash interrupted, read from the persistent counter
	BlocksScanned   int           // allocated blocks visited by the cell scan
	CellsScanned    int           // InCLL cells examined
	CellsRolledBack int           // cells whose tag matched the failed epoch and were rolled back
	Duration        time.Duration // wall time of the recovery pass

	// DrainInterrupted reports that the crash hit inside an async drain
	// window (the collision-log guard epoch equals the failed epoch):
	// recovery also rolled back cells tagged failedEpoch+1 and applied
	// CollisionsApplied entries from the collision log.
	DrainInterrupted  bool
	CollisionsApplied int // collision-log entries re-applied after the rollback scan

	// FlightEvents is the tail of the persistent flight recorder as it
	// survived the crash, oldest first — the runtime's final checkpoints,
	// cuts and drain commits, for post-mortems.
	FlightEvents []telemetry.FlightEvent
}

// Recover reconstructs a consistent runtime from a crashed heap (paper
// Fig. 5). It reboots the heap if needed, reads the failed epoch from the
// persistent image, scans every InCLL cell in NVMM — the metadata cells, the
// 64 root cells, and every cell of every allocated block — and rolls back to
// its logged value each cell whose epoch tag equals the failed epoch. The
// rolled-back lines are flushed immediately, so the persistent image itself
// becomes the state of the last completed checkpoint and recovery is
// idempotent across repeated crashes.
//
// parallelism is the number of goroutines used for the block scan (the
// paper parallelises recovery with 32 threads); values < 2 scan serially.
//
// Execution resumes in the failed epoch, exactly as in the paper (Fig. 5
// line 65): cells already tagged with it keep their backup — which recovery
// just made the current value — so a second crash rolls back to the same
// checkpoint.
func Recover(h *pmem.Heap, cfg Config, parallelism int) (*Runtime, *RecoveryReport, error) {
	start := time.Now()
	if cfg.Threads <= 0 || cfg.Threads > MaxThreads {
		return nil, nil, fmt.Errorf("core: thread count %d out of range [1,%d]", cfg.Threads, MaxThreads)
	}
	if h.Crashed() {
		h.Reopen()
	}
	rt := &Runtime{heap: h, cfg: cfg}
	rt.sysFlusher = h.NewFlusher()
	rt.sys = newThread(rt, -1)

	arena := newArenaView(rt)
	if err := arena.checkFormatMarker(); err != nil {
		return nil, nil, err
	}
	rt.arena = arena

	failedEpoch := h.Load64(h.EpochAddr())
	if failedEpoch == 0 {
		return nil, nil, fmt.Errorf("core: formatted heap with epoch 0 — torn format")
	}
	rt.epochCache.Store(failedEpoch)
	rt.durableEpoch.Store(failedEpoch)

	// If the collision-log guard epoch equals the failed epoch, the crash
	// hit between an async cut of failedEpoch and its durable commit:
	// epoch failedEpoch+1 was already executing, so its cells must be
	// rolled back too, and backups destroyed by double-epoch collisions
	// must be repaired from the log. The epoch counter is monotonic, so a
	// guard from any *committed* drain can never equal a failed epoch.
	drained := h.Load64(arena.collHdrAddr()) == failedEpoch

	rep := &RecoveryReport{FailedEpoch: failedEpoch, DrainInterrupted: drained}
	rt.flight, rep.FlightEvents = telemetry.OpenFlightRecorder(h, arena.flightHdrAddr(), flightEntries)
	f := rt.sysFlusher

	// Every cell tagged with the failed epoch is rolled back, flushed, and
	// re-registered in the system flush list: execution resumes in the
	// failed epoch, so later updates of these cells are not first touches
	// and would otherwise never be flushed by the resumed epoch's
	// checkpoint.
	rollback := func(a pmem.Addr) {
		rep.CellsScanned++
		if rollbackCell(h, a, failedEpoch, drained) {
			rep.CellsRolledBack++
			f.CLWB(a)
			rt.sys.AddModified(a)
		}
	}

	// Metadata and root cells first: the bump cursor gates the block scan.
	rollback(arena.bump.Addr())
	for c := 0; c < numClasses; c++ {
		rollback(arena.heads[c].Addr())
	}
	for i := 0; i < pmem.NumRoots; i++ {
		rollback(h.RootAddr(i))
	}
	f.SFence()

	// Replay the collision log before walking the carved region: each entry
	// names an InCLL cell whose last durable-cut value was evicted from its
	// backup by an update in the epoch after the interrupted drain's, and
	// the rollback above restored such cells only to the *not-yet-durable*
	// cut. The bump cursor itself can be one of them (carves in both epochs)
	// — and the not-yet-durable bump would extend the walk into blocks whose
	// headers never reached NVMM — so the log must have its final word
	// first. Replay and the per-cell rollback are mutually idempotent: a
	// replayed cell holds record = backup with the failed epoch's tag, which
	// later rollback passes rewrite to the same value.
	replayLog := func() error {
		if !drained {
			return nil
		}
		cnt := h.Load64(arena.collHdrAddr() + 8)
		if cnt > collLogEntries {
			return fmt.Errorf("core: corrupt collision log (count %d)", cnt)
		}
		for i := 0; i < int(cnt); i++ {
			ent := arena.collEntryAddr(i)
			a := pmem.Addr(h.Load64(ent))
			val := h.Load64(ent + 8)
			if a%pmem.WordSize != 0 || int64(a) <= 0 || int64(a)+3*pmem.WordSize > h.Size() ||
				uint64(a)%pmem.LineSize > pmem.LineSize-3*pmem.WordSize {
				return fmt.Errorf("core: corrupt collision log entry %d (addr %#x)", i, uint64(a))
			}
			h.Store64(a+cellRecordOff, val)
			h.Store64(a+cellBackupOff, val)
			h.Store64(a+cellEpochOff, failedEpoch)
			f.CLWB(a)
			rt.sys.AddModified(a)
		}
		rep.CollisionsApplied = int(cnt)
		f.SFence()
		return nil
	}

	// Walk the carved region block by block. Headers of every reachable
	// block were flushed by the checkpoint that made them reachable, so
	// magic and layout are trustworthy after the layout cell's own
	// rollback.
	var blocks []pmem.Addr
	walkBlocks := func() error {
		cur := arena.dataBase
		end := pmem.Addr(h.Load64(arena.bump.Addr() + cellRecordOff))
		for cur < end {
			if got := h.Load64(cur + hdrMagicOff); got != blockMagic {
				return fmt.Errorf("core: corrupt block header at %#x (magic %#x)", uint64(cur), got)
			}
			rollback(cur + hdrLayoutOff)
			class, _, _ := unpackLayout(h.Load64(cur + hdrLayoutOff + cellRecordOff))
			if class < 0 || class >= numClasses {
				return fmt.Errorf("core: corrupt block layout at %#x (class %d)", uint64(cur), class)
			}
			blocks = append(blocks, cur)
			cur += pmem.Addr(classSize(class))
		}
		rep.BlocksScanned = len(blocks)
		f.SFence()
		return nil
	}

	// Replay strictly before the walk: the log holds the bump cursor's last
	// durable-cut value, and the rolled-back (not-yet-durable) bump would
	// extend the walk into blocks whose headers never reached NVMM.
	// faultWalkBeforeReplay re-seeds the historical inversion of this order
	// for the regression fixture.
	steps := []func() error{replayLog, walkBlocks}
	if faultWalkBeforeReplay {
		steps[0], steps[1] = steps[1], steps[0]
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, nil, err
		}
	}

	scanBlock := func(block pmem.Addr, fl *pmem.Flusher, matched *[]pmem.Addr) (scanned int) {
		_, cells, _ := unpackLayout(h.Load64(block + hdrLayoutOff + cellRecordOff))
		check := func(a pmem.Addr) {
			scanned++
			if rollbackCell(h, a, failedEpoch, drained) {
				*matched = append(*matched, a)
				fl.CLWB(a)
			}
		}
		check(block + hdrNextOff)
		payload := block + headerSize
		for i := 0; i < cells; i++ {
			check(payload + pmem.Addr(i*CellSize))
		}
		return scanned
	}

	registerMatches := func(matched []pmem.Addr) {
		rep.CellsRolledBack += len(matched)
		for _, a := range matched {
			rt.sys.AddModified(a)
		}
	}

	if parallelism < 2 || len(blocks) < 64 {
		var matched []pmem.Addr
		for _, b := range blocks {
			rep.CellsScanned += scanBlock(b, f, &matched)
		}
		f.SFence()
		registerMatches(matched)
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		chunk := (len(blocks) + parallelism - 1) / parallelism
		for g := 0; g < parallelism; g++ {
			lo := g * chunk
			hi := min(lo+chunk, len(blocks))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(bs []pmem.Addr) {
				defer wg.Done()
				fl := h.NewFlusher()
				var matched []pmem.Addr
				scanned := 0
				for _, b := range bs {
					scanned += scanBlock(b, fl, &matched)
				}
				fl.SFence()
				mu.Lock()
				rep.CellsScanned += scanned
				registerMatches(matched)
				mu.Unlock()
			}(blocks[lo:hi])
		}
		wg.Wait()
	}

	// Rebuild worker handles; restart-point cells registered by a previous
	// run are recovered, missing ones (never checkpointed) are fresh.
	rt.flags = make([]flagSlot, cfg.Threads)
	rt.threads = make([]*Thread, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		t := newThread(rt, i)
		if addr := h.Load64(arena.rpSlot(i)); addr != 0 {
			t.rpID = InCLLAt(pmem.Addr(addr))
		} else {
			cell, err := arena.allocRPCell(rt.sys, i)
			if err != nil {
				return nil, nil, err
			}
			t.rpID = cell
		}
		rt.threads[i] = t
	}
	rt.finishInit()
	// Fresh thread handles start with zeroed epoch caches; seed them before
	// the handles are handed out (execution resumes in the failed epoch, so
	// nothing changes the shared counters between here and the first store).
	rt.refreshThreadCaches()
	// Attach (or replace the crashed runtime's) sanitizer last, replaying
	// the tracked state of every rolled-back cell: the resumed epoch owes
	// them a flush, and rule R1 holds it to that.
	rt.attachSanitizer(failedEpoch, true)

	rep.Duration = time.Since(start)
	var drainedAux uint64
	if drained {
		drainedAux = 1
	}
	rt.flight.Record(telemetry.FlightRecovery, failedEpoch, uint64(rep.CellsRolledBack), drainedAux)
	return rt, rep, nil
}

package core

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/psan"
	"github.com/respct/respct/internal/telemetry"
)

// MaxThreads is the maximum number of worker threads a Runtime supports.
// The per-thread restart-point table in NVMM is sized for it.
const MaxThreads = 256

// Config parameterises a Runtime.
type Config struct {
	// Threads is the number of worker threads (paper NB_THREADS). Each
	// worker must obtain its handle with Runtime.Thread and all workers
	// must reach restart points for checkpoints to complete.
	Threads int

	// SerialFlush disables the parallel flusher pool and drains all
	// to-be-flushed lists with a single flusher (the configuration the
	// paper identifies as the bottleneck of unmodified PMThreads).
	SerialFlush bool

	// AsyncFlush pipelines checkpoints: the checkpoint only parks the
	// workers long enough to steal every to-be-flushed list, advance the
	// DRAM epoch cache and arm the collision guard, then releases them; a
	// background drain writes the stolen lines back and only then persists
	// the epoch counter (the durable cut commits late). The worker-visible
	// pause shrinks to the gate + cut, at the price of a staleness bound of
	// two checkpoint intervals — buffered durable linearizability permits
	// it. Ignored when SkipFlush is set (there is nothing to overlap).
	AsyncFlush bool

	// SkipFlush elides flush_modified at checkpoints while keeping the
	// rest of the algorithm (the ResPCT-noFlush configuration of the
	// paper's overhead analysis, Fig. 10). Recovery is unsound with it.
	SkipFlush bool

	// DisableTracking makes AddModified append unconditionally even for
	// repeat updates (ablation of the InCLL-based tracking optimisation).
	// It changes nothing semantically — SFence coalesces duplicates —
	// but shows the cost of naive tracking.
	DisableTracking bool

	// Sanitize attaches the runtime persistency sanitizer (internal/psan):
	// a shadow heap that checks the durability state machine at every
	// store, flush and commit and reports protocol violations at the
	// violating instruction. Diagnostic tool — it serialises every store
	// through one mutex. Ignored under SkipFlush (that configuration elides
	// the flush by design). The RESPCT_SANITIZE environment variable can
	// arm it without the flag; see Runtime.Sanitizer.
	Sanitize bool

	// Metrics, when non-nil, receives the runtime's telemetry: checkpoint
	// pause/gate/epoch-length/lines/drain histograms plus pull-style series
	// over the stat counters the runtime maintains anyway. Nil costs
	// nothing — checkpoint-cadence observations are skipped entirely and no
	// hot path is touched either way.
	Metrics *telemetry.Registry

	// MetricsLabels is attached to every series this runtime registers.
	// Multi-runtime processes (a shard pool) use it to keep per-shard
	// series apart in a shared registry.
	MetricsLabels telemetry.Labels
}

//respct:linefit
type flagSlot struct {
	v atomic.Bool // 4 bytes: atomic.Bool wraps a uint32
	_ [60]byte    // pad to exactly one line; adjacent slots must not share
}

// CheckpointInfo describes one completed checkpoint. Under AsyncFlush,
// Total is the worker-visible pause only (gate + cut): the flush happens in
// the background after the workers resume, so FlushTime and LinesWrote are
// zero here and show up in RuntimeStats once the drain commits.
type CheckpointInfo struct {
	Epoch      uint64        // the epoch this checkpoint closed
	GateWait   time.Duration // time waiting for all threads to reach RPs
	FlushTime  time.Duration // time spent in flush_modified
	Total      time.Duration // end-to-end checkpoint duration
	AddrsSeen  int           // tracked addresses drained (paper's "addresses flushed")
	LinesWrote int           // unique cache lines written back
}

// RuntimeStats aggregates checkpoint activity.
type RuntimeStats struct {
	Checkpoints uint64        // completed checkpoints (epochs ended)
	AddrsSeen   uint64        // tracked addresses drained across all checkpoints
	LinesWrote  uint64        // unique cache lines written back across all checkpoints
	GateWait    time.Duration // total time spent waiting for workers to park
	FlushTime   time.Duration // total time spent in checkpoint flush phases
	TotalPause  time.Duration // total worker-visible checkpoint pause

	// Async-mode counters (zero in synchronous mode).
	Drains           uint64        // background drains committed
	CommitLag        time.Duration // total cut-to-durable-commit lag across drains
	CollisionFlushes uint64        // pending lines flushed by workers (flush-on-collision)
	CollisionsLogged uint64        // InCLL cells undo-logged to the collision log
	CollisionLogPeak uint64        // high-water mark of the collision log occupancy

	// Allocator magazine activity.
	MagazineRecycled uint64 // blocks recycled from per-thread magazines
	MagazineSpilled  uint64 // magazine overflow entries spilled to deferred frees
}

// Runtime is the ResPCT runtime for one persistent heap: the global epoch,
// the checkpoint machinery and the crash-consistent allocator.
type Runtime struct {
	heap *pmem.Heap
	cfg  Config

	// epochCache mirrors the persistent epoch counter (heap word 0) in
	// DRAM; update_InCLL reads it on every store.
	epochCache atomic.Uint64
	timer      atomic.Bool

	flags   []flagSlot
	threads []*Thread
	sys     *Thread // system thread: init, recovery, deferred frees; not gated

	// all caches the workers+sys slice (threads never change after
	// construction), so checkpoints don't allocate it every epoch.
	all []*Thread

	// parked counts threads whose checkpoint flag is set. The gate spins on
	// this single counter instead of rescanning every flag per Gosched.
	parked atomic.Int32

	arena *Arena

	ckptMu     sync.Mutex
	sysFlusher *pmem.Flusher // guarded by ckptMu

	// Checkpoint scratch, reused across epochs so steady-state checkpoints
	// allocate nothing. All guarded by ckptMu (deadScratch is additionally
	// held by an async drain until it completes, and Checkpoint joins any
	// in-flight drain before reusing it).
	deadScratch  []deadRange     // deadRanges result buffer
	deadKeys     []uint64        // deadRanges packed sort keys
	flushQueue   []*Thread       // flushModified's non-empty-list worklist
	poolFlushers []*pmem.Flusher // sync flush worker pool, one per worker
	spareLists   [][]pmem.Addr   // stolen toFlush buffers returned by drains

	// Asynchronous checkpointing state (Config.AsyncFlush; see async.go).
	asyncOn       bool                     // AsyncFlush && !SkipFlush, frozen at construction
	durableEpoch  atomic.Uint64            // epoch counter as persisted in NVMM (≤ epochCache)
	drainLive     atomic.Bool              // a drain is between its cut and its durable commit
	drainEpochN   atomic.Uint64            // the epoch the live drain is persisting
	drain         atomic.Pointer[drainJob] // in-flight drain, nil when none
	pendingBits   [2][]atomic.Uint64       // 1 bit per heap line; double-buffered dirty/pending maps
	activeBits    atomic.Uint32            // index tracking writes mark; 1-activeBits is being drained
	drainFlushers []*pmem.Flusher          // cached by the drain across epochs
	commitFlusher *pmem.Flusher            // drain-side flusher for the epoch commit
	collMu        sync.Mutex               // serialises collision-log appends
	collCount     int                      // volatile mirror of the log count; guarded by collMu
	collFlusher   *pmem.Flusher            // guarded by collMu
	drainHook     func(uint64, bool)       // test hook: (ending, preCommit)

	// quiescedHook, when set, runs while all threads are parked, before
	// flush_modified. Crash tests use it to certify logical snapshots.
	quiescedHook func(endingEpoch uint64)

	// faultCommitFirst, when set, makes synchronous checkpoints persist the
	// epoch counter before draining the flush lists — a deliberate protocol
	// violation installed only by SetCommitBeforeFlushFault for durability-
	// checker tests.
	faultCommitFirst bool

	nCheckpoints   atomic.Uint64
	statAddrs      atomic.Uint64
	statLines      atomic.Uint64
	statGateNs     atomic.Int64
	statFlushNs    atomic.Int64
	statTotalNs    atomic.Int64
	statDrains     atomic.Uint64
	statCommitNs   atomic.Int64
	statCollFlush  atomic.Uint64
	statCollLogged atomic.Uint64
	statCollPeak   atomic.Uint64 // collision-log occupancy high-water mark

	// san is the attached persistency sanitizer, nil unless Config.Sanitize
	// or RESPCT_SANITIZE armed it (see sanitize.go). Written once at
	// construction, before worker goroutines exist.
	san *psan.Sanitizer

	// flight is the persistent event ring carved from the arena metadata;
	// non-nil once NewRuntime/Recover complete. Record calls happen at
	// checkpoint cadence only.
	flight *telemetry.FlightRecorder

	// met holds the optional checkpoint-cadence histograms (Config.Metrics);
	// all fields nil when no registry was supplied.
	met struct {
		pauseNs *telemetry.Histogram // worker-visible checkpoint pause
		gateNs  *telemetry.Histogram // gate wait within the pause
		epochNs *telemetry.Histogram // epoch length (checkpoint-to-checkpoint)
		lines   *telemetry.Histogram // cache lines written back per flush
		drainNs *telemetry.Histogram // async cut-to-durable-commit lag
	}
	lastCkptEnd time.Time // previous checkpoint's release time; guarded by ckptMu
}

// Thread is a worker's handle on the runtime. Each handle must be used by a
// single goroutine. It owns the thread's to-be-flushed list, deferred-free
// list and persistent restart-point identifier.
type Thread struct {
	rt          *Runtime
	id          int
	toFlush     []pmem.Addr
	pendingFree []pmem.Addr
	rpID        InCLL
	rpCalls     uint64

	// Write-combining line cache (track.go): registrations of a line already
	// seen at the current generation are dropped. The generation bumps
	// whenever toFlush is cleared or stolen (resetTracking).
	dedup     bool // !DisableTracking, frozen at construction
	trackGen  uint64
	lineCache []lineSlot

	// Cached epoch state (track.go): exact copies of epochCache /
	// durableEpoch / drainLive refreshed at park/unpark boundaries, so the
	// tracked-store fast path does no atomic loads. Owner-goroutine only.
	epochCached   uint64
	durableCached uint64
	drainCached   bool

	// magazines cache freed blocks per size class for lock-free recycling
	// by the owning thread (see Arena.Free). magStart is the pop cursor.
	magazines [numClasses][]magazineEntry
	magStart  [numClasses]int

	// flusher is this thread's cached write-back handle, used by async
	// flush-on-collision — reusing it keeps its pending buffer warm.
	flusher *pmem.Flusher

	// Magazine activity counters. Atomics only because Stats may read them
	// concurrently; each is written by its owning goroutine alone, so the
	// adds never contend.
	magRecycled atomic.Uint64
	magSpilled  atomic.Uint64
}

// magazineEntry records a freed block and the epoch that freed it: the
// block is recyclable once that epoch has been checkpointed.
type magazineEntry struct {
	block pmem.Addr
	epoch uint64
}

// NewRuntime formats a fresh heap for ResPCT and returns its runtime: the
// allocator metadata is laid out and persisted, the global epoch is set to 1
// and every worker thread's persistent restart-point cell is allocated. Use
// Recover instead for a heap that holds a previous execution's state.
func NewRuntime(h *pmem.Heap, cfg Config) (*Runtime, error) {
	if cfg.Threads <= 0 || cfg.Threads > MaxThreads {
		return nil, fmt.Errorf("core: thread count %d out of range [1,%d]", cfg.Threads, MaxThreads)
	}
	rt := &Runtime{heap: h, cfg: cfg}
	rt.sysFlusher = h.NewFlusher()
	rt.sys = newThread(rt, -1)
	rt.epochCache.Store(1)
	rt.durableEpoch.Store(1)
	h.Store64(h.EpochAddr(), 1)

	arena, err := formatArena(rt)
	if err != nil {
		return nil, err
	}
	rt.arena = arena
	// The flight ring is formatted (cursor zeroed and persisted) before the
	// format marker goes down, so a marker in NVMM implies a valid ring.
	rt.flight = telemetry.NewFlightRecorder(h, arena.flightHdrAddr(), flightEntries)

	rt.flags = make([]flagSlot, cfg.Threads)
	rt.threads = make([]*Thread, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		t := newThread(rt, i)
		cell, err := arena.allocRPCell(rt.sys, i)
		if err != nil {
			return nil, err
		}
		t.rpID = cell
		rt.threads[i] = t
	}
	rt.finishInit()

	// Persist the formatted image and close the formatting epoch like a
	// checkpoint would: flush everything formatting touched, then advance
	// to epoch 2 and persist the counter. Ending the epoch here keeps the
	// tracking invariant — a cell whose tag equals the current epoch is
	// always in some to-be-flushed list — which would break if execution
	// continued in the epoch whose list was just drained. The format
	// marker goes last, so a marker in NVMM implies a complete format.
	for _, a := range rt.sys.toFlush {
		rt.sysFlusher.CLWB(a)
	}
	rt.sys.resetTracking()
	rt.sysFlusher.SFence()
	h.Annotate("epoch-commit", 2)
	h.Store64(h.EpochAddr(), 2)
	rt.epochCache.Store(2)
	rt.durableEpoch.Store(2)
	rt.sysFlusher.Persist(h.EpochAddr())
	arena.persistFormatMarker(rt.sysFlusher)
	rt.refreshThreadCaches()
	rt.attachSanitizer(2, false)
	rt.flight.Record(telemetry.FlightFormat, 2, uint64(cfg.Threads), 0)
	return rt, nil
}

// finishInit builds the state both NewRuntime and Recover need once the
// thread handles exist: the cached all-threads slice and, in async mode, the
// pending-line bitmap and the drain-side flushers.
func (rt *Runtime) finishInit() {
	rt.all = make([]*Thread, 0, len(rt.threads)+1)
	rt.all = append(rt.all, rt.threads...)
	rt.all = append(rt.all, rt.sys)
	rt.asyncOn = rt.cfg.AsyncFlush && !rt.cfg.SkipFlush
	if rt.asyncOn {
		words := (rt.heap.Lines() + 63) / 64
		rt.pendingBits[0] = make([]atomic.Uint64, words)
		rt.pendingBits[1] = make([]atomic.Uint64, words)
		rt.commitFlusher = rt.heap.NewFlusher()
		rt.collFlusher = rt.heap.NewFlusher()
		// Addresses tracked before this point — recovery's rolled-back and
		// replayed cells in particular — predate the dirty bitmaps. Mark
		// them now, or the first async drain's test-and-clear would skip
		// their lines and commit an epoch that never flushed them
		// (faultSkipReplayMarks re-seeds exactly that bug for the sanitizer
		// regression fixture).
		if !faultSkipReplayMarks {
			for _, t := range rt.all {
				for _, a := range t.toFlush {
					rt.markDirty(a)
				}
			}
		}
	}
	if reg := rt.cfg.Metrics; reg != nil {
		lb := rt.cfg.MetricsLabels
		rt.met.pauseNs = reg.Histogram("respct_checkpoint_pause_ns", "worker-visible checkpoint pause", lb)
		rt.met.gateNs = reg.Histogram("respct_checkpoint_gate_ns", "time waiting for workers to reach restart points", lb)
		rt.met.epochNs = reg.Histogram("respct_epoch_length_ns", "time between consecutive checkpoints", lb)
		rt.met.lines = reg.Histogram("respct_checkpoint_lines", "cache lines written back per checkpoint flush", lb)
		rt.met.drainNs = reg.Histogram("respct_drain_ns", "async cut-to-durable-commit lag", lb)
		rt.registerFuncs(reg)
	}
}

// registerFuncs exposes counters the runtime maintains anyway as pull-style
// series. Registration is idempotent and rebinding (latest fn wins), so a
// registry outliving a crash-recover cycle ends up scraping the live runtime.
func (rt *Runtime) registerFuncs(reg *telemetry.Registry) {
	lb := rt.cfg.MetricsLabels
	reg.CounterFunc("respct_checkpoints_total", "checkpoints completed", lb, rt.nCheckpoints.Load)
	reg.CounterFunc("respct_flushed_lines_total", "cache lines written back by checkpoint flushes", lb, rt.statLines.Load)
	reg.CounterFunc("respct_tracked_addrs_total", "tracked addresses drained by checkpoints", lb, rt.statAddrs.Load)
	reg.CounterFunc("respct_drains_total", "background drains committed", lb, rt.statDrains.Load)
	reg.CounterFunc("respct_collision_flushes_total", "pending lines flushed by workers on collision", lb, rt.statCollFlush.Load)
	reg.CounterFunc("respct_collisions_logged_total", "InCLL cells saved to the collision log", lb, rt.statCollLogged.Load)
	reg.GaugeFunc("respct_collision_log_peak", "collision-log occupancy high-water mark", lb,
		func() float64 { return float64(rt.statCollPeak.Load()) })
	reg.CounterFunc("respct_magazine_recycled_total", "blocks recycled from per-thread magazines", lb,
		func() uint64 { return rt.Stats().MagazineRecycled })
	reg.CounterFunc("respct_magazine_spilled_total", "magazine entries spilled to deferred frees", lb,
		func() uint64 { return rt.Stats().MagazineSpilled })
	reg.GaugeFunc("respct_epoch", "current epoch", lb,
		func() float64 { return float64(rt.epochCache.Load()) })
	reg.GaugeFunc("respct_durable_epoch", "epoch as persisted in NVMM", lb,
		func() float64 { return float64(rt.durableEpoch.Load()) })
	reg.CounterFunc("respct_arena_allocs_total", "arena allocations", lb,
		func() uint64 { return rt.arena.Stats().Allocs })
	reg.CounterFunc("respct_arena_frees_total", "arena frees", lb,
		func() uint64 { return rt.arena.Stats().Frees })
	reg.CounterFunc("respct_arena_carves_total", "fresh blocks carved off the bump region", lb,
		func() uint64 { return rt.arena.Stats().Carves })
	reg.GaugeFunc("respct_arena_used_bytes", "bytes between arena data base and bump cursor", lb,
		func() float64 { return float64(rt.arena.Stats().Used) })
	reg.CounterFunc("respct_pmem_flushes_total", "cache-line write-backs issued to NVMM", lb,
		func() uint64 { return rt.heap.Stats().Flushes })
	reg.CounterFunc("respct_pmem_fences_total", "persist barriers issued", lb,
		func() uint64 { return rt.heap.Stats().Fences })
	reg.CounterFunc("respct_pmem_evictions_total", "chaos-evictor line write-backs", lb,
		func() uint64 { return rt.heap.Stats().Evictions })
	reg.GaugeFunc("respct_flight_seq", "flight-recorder sequence number", lb,
		func() float64 { return float64(rt.flight.Seq()) })
}

// Flight returns the runtime's persistent flight recorder. It is always
// non-nil after NewRuntime/Recover; events append at checkpoint cadence.
func (rt *Runtime) Flight() *telemetry.FlightRecorder { return rt.flight }

// Heap returns the underlying persistent heap.
func (rt *Runtime) Heap() *pmem.Heap { return rt.heap }

// Arena returns the runtime's crash-consistent allocator.
func (rt *Runtime) Arena() *Arena { return rt.arena }

// Epoch returns the current epoch number.
func (rt *Runtime) Epoch() uint64 { return rt.epochCache.Load() }

// Threads returns the configured worker count.
func (rt *Runtime) Threads() int { return len(rt.threads) }

// Thread returns worker i's handle. The handle must be used by one
// goroutine only.
func (rt *Runtime) Thread(i int) *Thread { return rt.threads[i] }

// Sys returns the system thread handle, for initialisation code that runs
// before workers start (or while they are quiesced). It is not gated by
// checkpoints and must never be used concurrently with them; when a
// checkpointer may be running, use ExclusiveSys instead.
func (rt *Runtime) Sys() *Thread { return rt.sys }

// ExclusiveSys runs f with the system thread while holding the checkpoint
// lock, so f's updates cannot race a concurrent checkpoint's flush of the
// system flush list. Keep f short: checkpoints are blocked for its
// duration.
func (rt *Runtime) ExclusiveSys(f func(sys *Thread)) {
	rt.ckptMu.Lock()
	defer rt.ckptMu.Unlock()
	f(rt.sys)
}

// SetQuiescedHook installs f to run during checkpoints while every worker is
// parked, before modified data is flushed. Pass nil to clear. Not safe to
// call concurrently with checkpoints.
func (rt *Runtime) SetQuiescedHook(f func(endingEpoch uint64)) { rt.quiescedHook = f }

// SetCommitBeforeFlushFault installs (on) or clears a deliberate protocol
// fault for testing the durability checker: while set, a synchronous
// checkpoint persists the incremented epoch counter *before* draining the
// flush lists, so a crash landing between the commit write-back and the
// payload flush recovers to a checkpoint whose data never reached NVMM —
// the commit-before-flush ordering the persistorder analyzer forbids in
// real code. Test hook only; it has no effect on async checkpoints and must
// not be toggled concurrently with a checkpoint.
func (rt *Runtime) SetCommitBeforeFlushFault(on bool) { rt.faultCommitFirst = on }

// RootInCLL returns an InCLL view of named persistent root slot i. Roots
// are always scanned during recovery. Publish into a root with
// Thread.Update, never Thread.Init: roots pre-exist, and only Update's undo
// log lets a crash roll the publication back to the previous root — Init
// would pin the new value while the block it points to is un-carved by the
// allocator rollback.
func (rt *Runtime) RootInCLL(i int) InCLL {
	return InCLLAt(rt.heap.RootAddr(i))
}

// CheckpointIdle runs one checkpoint while no worker goroutines are active:
// it opens an allow window for every worker, checkpoints, and closes the
// windows. Setup code uses it to make freshly created structures durable
// before the workload (and its periodic checkpointer) starts.
func (rt *Runtime) CheckpointIdle() CheckpointInfo {
	for i := range rt.threads {
		rt.threads[i].CheckpointAllow()
	}
	info := rt.Checkpoint()
	for i := range rt.threads {
		rt.threads[i].CheckpointPrevent(nil)
	}
	return info
}

// ID returns the worker index, or -1 for the system thread.
func (t *Thread) ID() int { return t.id }

// Runtime returns the runtime this handle belongs to.
func (t *Thread) Runtime() *Runtime { return t.rt }

// RPID returns the thread's persistent restart-point cell. After recovery
// it holds the identifier of the RP the thread last parked at, which tells
// the application where to resume.
func (t *Thread) RPID() InCLL { return t.rpID }

// Load reads a persistent word.
func (t *Thread) Load(a pmem.Addr) uint64 { return t.rt.heap.Load64(a) }

// RP marks a restart point (paper Fig. 4 lines 40-45). The identifier must
// be unique per RP() call site and stable across runs. If a checkpoint is
// pending the thread parks here until it completes.
func (t *Thread) RP(id uint64) {
	t.Update(t.rpID, id)
	if t.rt.timer.Load() {
		t.rt.park(t.id)
		for t.rt.timer.Load() {
			runtime.Gosched()
		}
		t.rt.unpark(t.id)
		t.refreshEpochState()
		return
	}
	if t.rt.asyncOn {
		// A drain may have committed since the last boundary; re-reading the
		// flag here (one load per RP, not per store) lets the collision guard
		// go back to its atomics-free no-drain path.
		t.drainCached = t.rt.drainLive.Load()
	}
	// On few-core hosts a tight RP loop can starve the checkpointer (real
	// hardware threads in the paper's setup run truly in parallel); yield
	// occasionally so the timer goroutine gets CPU.
	t.rpCalls++
	if t.rpCalls&0xFF == 0 {
		runtime.Gosched()
	}
}

// CheckpointAllow marks the thread as safe to checkpoint while it is about
// to block (paper Fig. 4 lines 30-31), e.g. on a condition variable or at
// goroutine exit. The thread must not touch persistent state until it calls
// CheckpointPrevent.
func (t *Thread) CheckpointAllow() {
	t.rt.park(t.id)
}

// park sets thread i's checkpoint flag, unpark clears it; both keep the
// parked countdown in sync. They are idempotent — CheckpointAllow may run on
// an already-allowed thread (e.g. a goroutine-exit hook after a CondWait) —
// so the flag's Swap result gates the counter update.
func (rt *Runtime) park(i int) {
	if !rt.flags[i].v.Swap(true) {
		rt.parked.Add(1)
	}
}

func (rt *Runtime) unpark(i int) {
	if rt.flags[i].v.Swap(false) {
		rt.parked.Add(-1)
	}
}

// CheckpointPrevent revokes CheckpointAllow after a wait returns (paper
// Fig. 4 lines 32-39). If a checkpoint is in flight the thread temporarily
// re-allows it, releases mu (the mutex re-acquired by the condition wait) to
// avoid deadlocking threads parked at RPs that need it, waits for the
// checkpoint to finish, and re-acquires mu. mu may be nil for blocking
// calls made outside any critical section.
func (t *Thread) CheckpointPrevent(mu sync.Locker) {
	t.rt.unpark(t.id)
	if t.rt.timer.Load() {
		t.rt.park(t.id)
		if mu != nil {
			mu.Unlock()
		}
		for t.rt.timer.Load() {
			runtime.Gosched()
		}
		if mu != nil {
			mu.Lock()
		}
		t.rt.unpark(t.id)
	}
	// A checkpoint may have run during the allow window; with our flag down
	// again, the epoch state is frozen until the next park, so the refreshed
	// cache is exact.
	t.refreshEpochState()
}

// CondWait waits on c with the full Fig. 7 protocol: allow checkpoints,
// wait, then prevent them again (releasing c's mutex if a checkpoint is in
// flight). The caller must hold mu, which must be the mutex c was created
// with, and must re-check its predicate after CondWait returns.
func (t *Thread) CondWait(c *sync.Cond, mu sync.Locker) {
	t.CheckpointAllow()
	c.Wait()
	t.CheckpointPrevent(mu)
}

// Checkpoint executes the paper's checkpoint procedure (Fig. 4 lines 46-59):
// raise the timer, wait until every worker is parked at an RP (or inside an
// allow window), flush all tracked modifications, increment and persist the
// global epoch, apply deferred frees in the new epoch, release the workers.
//
// Under AsyncFlush the flush and the durable commit move off the critical
// path: the checkpoint steals every to-be-flushed list at the cut, releases
// the workers, and hands the lists to a background drain (async.go). A new
// checkpoint first joins any in-flight drain — epochs commit in order.
func (rt *Runtime) Checkpoint() CheckpointInfo {
	rt.ckptMu.Lock()
	for {
		d := rt.drain.Load()
		if d == nil {
			break
		}
		rt.ckptMu.Unlock()
		<-d.done
		rt.ckptMu.Lock()
	}
	defer rt.ckptMu.Unlock()

	start := time.Now()
	if rt.met.epochNs != nil && !rt.lastCkptEnd.IsZero() {
		rt.met.epochNs.ObserveDuration(0, start.Sub(rt.lastCkptEnd))
	}
	rt.timer.Store(true)
	want := int32(len(rt.threads))
	for rt.parked.Load() < want {
		runtime.Gosched()
	}
	gateDone := time.Now()

	ending := rt.epochCache.Load()
	if rt.quiescedHook != nil {
		rt.quiescedHook(ending)
	}

	if rt.asyncOn {
		return rt.cutAsync(ending, start, gateDone)
	}

	newEpoch := ending + 1
	if rt.faultCommitFirst {
		// FAULT INJECTION (SetCommitBeforeFlushFault): publish the epoch
		// counter while the payload it claims durable is still volatile —
		// the exact ordering bug persistorder exists to prevent. A crash
		// between this commit and the flush below recovers to a state that
		// was never certified; the crashexplore durability checker must
		// catch it — and the sanitizer's commit gate must flag it with no
		// crash at all.
		rt.sanBeforeCommit(ending, rt.deadRanges())
		rt.heap.Annotate("epoch-commit", newEpoch)
		//respct:allow persistorder — deliberate commit-before-flush fault injection for durability-checker tests
		rt.heap.Store64(rt.heap.EpochAddr(), newEpoch)
		rt.sysFlusher.Persist(rt.heap.EpochAddr())
	}

	var addrs, lines int
	if !rt.cfg.SkipFlush {
		addrs, lines = rt.flushModified()
	} else {
		for _, t := range rt.allThreads() {
			addrs += len(t.toFlush)
			t.resetTracking()
		}
	}
	flushDone := time.Now()

	if !rt.faultCommitFirst {
		// The durable cut: everything the ending epoch modified is in NVMM
		// (flushModified just fenced), so the epoch counter may now
		// advance and persist. This store-then-persist pair is the commit
		// point the whole recovery contract hangs off — nothing of epoch
		// `ending` may be claimed durable before it. The sanitizer audits
		// exactly that claim first.
		rt.sanBeforeCommit(ending, rt.deadScratch)
		rt.heap.Annotate("epoch-commit", newEpoch)
		rt.heap.Store64(rt.heap.EpochAddr(), newEpoch)
		rt.sysFlusher.Persist(rt.heap.EpochAddr())
	}
	rt.epochCache.Store(newEpoch)
	rt.durableEpoch.Store(newEpoch)
	if rt.san != nil {
		// Stores from here on — the deferred frees below included — belong
		// to the new epoch.
		rt.san.AdvanceEpoch(newEpoch)
	}

	// Deferred frees become visible in the new epoch, so a crash rolls
	// them back and a block can never be recycled in the epoch it was
	// freed (which would clobber data the undo log still depends on).
	rt.arena.applyDeferredFrees(rt.sys, rt.threads)

	rt.timer.Store(false)
	end := time.Now()

	info := CheckpointInfo{
		Epoch:      ending,
		GateWait:   gateDone.Sub(start),
		FlushTime:  flushDone.Sub(gateDone),
		Total:      end.Sub(start),
		AddrsSeen:  addrs,
		LinesWrote: lines,
	}
	rt.nCheckpoints.Add(1)
	rt.statAddrs.Add(uint64(addrs))
	rt.statLines.Add(uint64(lines))
	rt.statGateNs.Add(int64(info.GateWait))
	rt.statFlushNs.Add(int64(info.FlushTime))
	rt.statTotalNs.Add(int64(info.Total))
	rt.lastCkptEnd = end
	if rt.met.pauseNs != nil {
		rt.met.pauseNs.ObserveDuration(0, info.Total)
		rt.met.gateNs.ObserveDuration(0, info.GateWait)
		rt.met.lines.Observe(0, uint64(lines))
	}
	if rt.flight != nil {
		rt.flight.Record(telemetry.FlightCheckpoint, ending, uint64(info.Total), uint64(lines))
	}
	return info
}

func (rt *Runtime) allThreads() []*Thread { return rt.all }

// deadRange is the payload span of a block freed during the ending epoch.
type deadRange struct{ start, end pmem.Addr }

// deadLenBits is the width of the length-in-lines field of a packed dead-range
// sort key; 21 bits cover the largest size class (64 MiB).
const deadLenBits = 21

// deadRanges collects the payload spans of every block freed during the
// epoch this checkpoint is closing. Such a block is unreachable at the
// checkpoint's cut (Free defers recycling to the next epoch), so payload
// writes it received this epoch need not be written back: recovery never
// follows a pointer into it, and its header — which the recovery scan does
// read — is excluded from the span. Under an update-heavy skewed workload
// most records allocated this epoch die this epoch, so the elision removes
// the bulk of the flush. Runs with all workers parked; magazines are stamped
// in free order, so the entries of the ending epoch form each magazine's
// tail.
func (rt *Runtime) deadRanges() []deadRange {
	ending := rt.epochCache.Load()
	// Spans are packed into single uint64 sort keys — start line in the high
	// bits, length in lines in the low deadLenBits — so the sort runs on the
	// specialised uint64 path instead of a comparator over two-word structs.
	// Both fields fit by construction: blocks are line-aligned, the largest
	// class is 64 MiB (2^20 lines), and heaps are far below 2^43 lines.
	keys := rt.deadKeys[:0]
	for _, t := range rt.allThreads() {
		for c := range t.magazines {
			mag := t.magazines[c]
			lenLines := uint64(classSize(c)-headerSize) / pmem.LineSize
			for i := len(mag) - 1; i >= t.magStart[c]; i-- {
				if mag[i].epoch != ending {
					break
				}
				start := uint64(mag[i].block + headerSize)
				keys = append(keys, (start/pmem.LineSize)<<deadLenBits|lenLines)
			}
		}
	}
	slices.Sort(keys)
	rt.deadKeys = keys
	rs := rt.deadScratch[:0]
	for _, k := range keys {
		start := pmem.Addr((k >> deadLenBits) * pmem.LineSize)
		rs = append(rs, deadRange{start, start + pmem.Addr(k&(1<<deadLenBits-1))*pmem.LineSize})
	}
	rt.deadScratch = rs
	return rs
}

// flushInto queues one thread's live tracked lines on f. The list is left
// unsorted: write-combining already de-duplicated it at registration time,
// and the flusher's own SFence sort-coalesces whatever duplicates remain, so
// sorting here would only repeat work the fence does anyway. Dead spans are
// elided by an inline binary search over the (sorted, disjoint, line-aligned)
// ranges — read-only probes, no comparator calls.
func flushInto(f *pmem.Flusher, list []pmem.Addr, dead []deadRange) {
	if len(dead) == 0 {
		for _, a := range list {
			f.CLWB(a)
		}
		return
	}
	for _, a := range list {
		// Find the last span starting at or before a; a is dead iff it falls
		// before that span's end (spans cover whole lines, and headers — one
		// full line — are excluded, so any overlap decides the line).
		lo, hi := 0, len(dead)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if dead[mid].start <= a {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 && a < dead[lo-1].end {
			continue
		}
		f.CLWB(a)
	}
}

// flushModified drains every thread's to-be-flushed list, writing the
// corresponding cache lines back to NVMM — except lines that live wholly
// inside blocks freed during the ending epoch (see deadRanges). The parallel
// path runs at most GOMAXPROCS worker goroutines that steal whole lists off a
// shared cursor (paper: "a pool of flusher threads flushes data to NVMM in
// parallel during checkpoints") — one goroutine per list degrades on few-core
// hosts, and on a single core the serial path avoids the spawns entirely.
func (rt *Runtime) flushModified() (addrs, lines int) {
	dead := rt.deadRanges()
	queue := rt.flushQueue[:0]
	for _, t := range rt.allThreads() {
		if len(t.toFlush) > 0 {
			addrs += len(t.toFlush)
			queue = append(queue, t)
		}
	}
	rt.flushQueue = queue

	workers := runtime.GOMAXPROCS(0)
	if workers > len(queue) {
		workers = len(queue)
	}
	if rt.cfg.SerialFlush || workers <= 1 {
		f := rt.sysFlusher
		before := f.Flushes()
		for _, t := range queue {
			flushInto(f, t.toFlush, dead)
			t.resetTracking()
		}
		f.SFence()
		return addrs, int(f.Flushes() - before)
	}

	var next atomic.Int32
	var lineCount atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		f := rt.poolFlusher(w)
		wg.Add(1)
		go func(f *pmem.Flusher) {
			defer wg.Done()
			before := f.Flushes()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queue) {
					break
				}
				t := queue[i]
				flushInto(f, t.toFlush, dead)
				t.resetTracking()
			}
			f.SFence()
			lineCount.Add(int64(f.Flushes() - before))
		}(f)
	}
	wg.Wait()
	return addrs, int(lineCount.Load())
}

// poolFlusher returns the w-th cached flush-pool flusher, growing the cache
// as needed. Guarded by ckptMu (only checkpoints use the pool).
func (rt *Runtime) poolFlusher(w int) *pmem.Flusher {
	for len(rt.poolFlushers) <= w {
		rt.poolFlushers = append(rt.poolFlushers, rt.heap.NewFlusher())
	}
	return rt.poolFlushers[w]
}

// Stats returns cumulative checkpoint statistics.
func (rt *Runtime) Stats() RuntimeStats {
	return RuntimeStats{
		Checkpoints: rt.nCheckpoints.Load(),
		AddrsSeen:   rt.statAddrs.Load(),
		LinesWrote:  rt.statLines.Load(),
		GateWait:    time.Duration(rt.statGateNs.Load()),
		FlushTime:   time.Duration(rt.statFlushNs.Load()),
		TotalPause:  time.Duration(rt.statTotalNs.Load()),

		Drains:           rt.statDrains.Load(),
		CommitLag:        time.Duration(rt.statCommitNs.Load()),
		CollisionFlushes: rt.statCollFlush.Load(),
		CollisionsLogged: rt.statCollLogged.Load(),
		CollisionLogPeak: rt.statCollPeak.Load(),

		MagazineRecycled: rt.magCount(func(t *Thread) uint64 { return t.magRecycled.Load() }),
		MagazineSpilled:  rt.magCount(func(t *Thread) uint64 { return t.magSpilled.Load() }),
	}
}

func (rt *Runtime) magCount(f func(*Thread) uint64) uint64 {
	var total uint64
	for _, t := range rt.all {
		total += f(t)
	}
	return total
}

package structures

import (
	"testing"
	"time"
)

// TestReopenAfterClose is the regression test for the Close() thread-slot
// fix: Close must leave every runtime thread's allow window open (so a
// checkpoint cannot stall on a closed structure's former workers) while the
// persistent state stays reachable — Open* on the same roots reattaches and
// the contents survive, including across a post-Close checkpoint.
func TestReopenAfterClose(t *testing.T) {
	rt := newRespctFixture(t, 3, 0)

	q, err := NewRespctQueue(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := NewRespctSkipList(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	ssl, err := NewRespctStrSkipList(rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewRespctLog(rt, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 16; i++ {
		q.Enqueue(1, i)
		q.PerOp(1)
		sl.Insert(2, i, i*10)
		sl.PerOp(2)
	}
	ssl.Insert(1, "alpha", 1)
	ssl.Insert(1, "beta", 2)
	lg.Append(2, []byte("rec-0"))

	// Close with threads 1 and 2 mid-work (allow windows shut). A checkpoint
	// right after Close must not stall: Close released every slot.
	q.Close()
	sl.Close()
	ssl.Close()
	lg.Close()
	done := make(chan struct{})
	go func() {
		rt.Checkpoint()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("checkpoint stalled after Close: thread slots not released")
	}

	// Reopen on the same roots: contents intact, structures usable again.
	// Thread 0 re-enters a prevent window for the post-reopen mutations.
	rt.Thread(0).CheckpointPrevent(nil)
	q2, err := OpenRespctQueue(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := q2.Len(); n != 16 {
		t.Fatalf("reopened queue has %d elements, want 16", n)
	}
	if v, ok := q2.Dequeue(0); !ok || v != 1 {
		t.Fatalf("reopened queue Dequeue = %d,%v", v, ok)
	}
	sl2, err := OpenRespctSkipList(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sl2.Get(0, 7); !ok || v != 70 {
		t.Fatalf("reopened skiplist Get(7) = %d,%v", v, ok)
	}
	ssl2, err := OpenRespctStrSkipList(rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := ssl2.Snapshot()
	if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "beta" || vals[1] != 2 {
		t.Fatalf("reopened string skiplist snapshot = %v %v", keys, vals)
	}
	lg2, err := OpenRespctLog(rt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lg2.Len() != 1 {
		t.Fatalf("reopened log has %d records, want 1", lg2.Len())
	}
	if idx := lg2.Append(0, []byte("rec-1")); idx != 1 {
		t.Fatalf("append after reopen returned index %d, want 1", idx)
	}
	q2.ThreadExit(0)
	lg2.ThreadExit(0)
}

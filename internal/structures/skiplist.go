package structures

import (
	"fmt"
	"sync"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
)

// SortedMap is an ordered map of 8-byte keys to 8-byte values with range
// scans. Key 0 is reserved.
type SortedMap interface {
	// Insert adds or overwrites key and reports whether it was absent.
	Insert(th int, key, value uint64) bool
	// Remove deletes key and reports whether it was present.
	Remove(th int, key uint64) bool
	// Get returns the value stored under key.
	Get(th int, key uint64) (uint64, bool)
	// Scan calls fn for each pair with from <= key <= to in ascending key
	// order until fn returns false.
	Scan(th int, from, to uint64, fn func(key, value uint64) bool)
	// PerOp is called by drivers once per completed operation; persistent
	// flavours place their restart point here.
	PerOp(th int)
	// ThreadExit marks worker th as finished so checkpoints no longer
	// wait for it.
	ThreadExit(th int)
	// Close releases background machinery and runtime thread slots.
	Close()
}

const (
	skipMaxLevel = 16

	rpSkipOp uint64 = 0x536b69704f70 // "SkipOp"
)

// skipLevel derives a deterministic tower height from the key, so the
// structure's shape is reproducible across runs and across the transient
// and persistent variants (expected height distribution ~ geometric(1/2)).
func skipLevel(key uint64) int {
	h := hashMix(key * 0x9E3779B97F4A7C15)
	lvl := 1
	for h&1 == 1 && lvl < skipMaxLevel {
		lvl++
		h >>= 1
	}
	return lvl
}

// RespctSkipList is a persistent sorted map built on ResPCT: a skiplist
// whose forward pointers and values are InCLL cells. A single mutex guards
// mutations (the paper's lock-based programming model; scans and gets take
// it too for strict consistency). All pointer updates of an insertion or
// removal are individually undo-logged, so a crashed epoch rolls the whole
// structural change back as one — no partial-link states can survive
// recovery.
//
// Node payload: cells [next_0 .. next_{level-1}, value], raw words
// [key, level].
type RespctSkipList struct {
	rt   *core.Runtime
	desc pmem.Addr // head tower: skipMaxLevel next cells
	mu   sync.Mutex
}

// NewRespctSkipList creates an empty persistent sorted map published under
// heap root slot rootIdx.
func NewRespctSkipList(rt *core.Runtime, rootIdx int) (*RespctSkipList, error) {
	sys := rt.Sys()
	desc := rt.Arena().AllocCells(sys, skipMaxLevel)
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating skiplist head")
	}
	for i := 0; i < skipMaxLevel; i++ {
		sys.Init(core.Cell(desc, i), 0)
	}
	sys.Update(rt.RootInCLL(rootIdx), uint64(desc))
	return &RespctSkipList{rt: rt, desc: desc}, nil
}

// OpenRespctSkipList reattaches after recovery.
func OpenRespctSkipList(rt *core.Runtime, rootIdx int) (*RespctSkipList, error) {
	desc := rt.ReadAddr(rt.RootInCLL(rootIdx))
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: no skiplist registered under root %d", rootIdx)
	}
	return &RespctSkipList{rt: rt, desc: desc}, nil
}

func (s *RespctSkipList) headNext(lvl int) core.InCLL { return core.Cell(s.desc, lvl) }

// Every node reserves the full skipMaxLevel+1 cells — cell 0 is the value,
// cells 1..skipMaxLevel the forward pointers — so field offsets are fixed
// regardless of the tower height and the raw trailer [key, level] is always
// at RawBase(n, skipMaxLevel+1). Towers are short on average; the padding
// keeps the layout self-describing for the recovery scan.
func (s *RespctSkipList) nodeValue(n pmem.Addr) core.InCLL { return core.Cell(n, 0) }

func (s *RespctSkipList) nodeKey(n pmem.Addr) uint64 {
	return s.rt.Heap().Load64(core.RawBase(n, skipMaxLevel+1))
}

func (s *RespctSkipList) nodeLvl(n pmem.Addr) int {
	return int(s.rt.Heap().Load64(core.RawBase(n, skipMaxLevel+1) + 8))
}

func (s *RespctSkipList) next(n pmem.Addr, lvl int) pmem.Addr {
	if n == s.desc {
		return s.rt.ReadAddr(s.headNext(lvl))
	}
	return s.rt.ReadAddr(core.Cell(n, 1+lvl))
}

func (s *RespctSkipList) nextCell(n pmem.Addr, lvl int) core.InCLL {
	if n == s.desc {
		return s.headNext(lvl)
	}
	return core.Cell(n, 1+lvl)
}

// findPredecessors fills preds with the rightmost node before key at each
// level and returns the candidate node at level 0 (which may or may not
// match key).
func (s *RespctSkipList) findPredecessors(key uint64, preds *[skipMaxLevel]pmem.Addr) pmem.Addr {
	cur := s.desc
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.next(cur, lvl)
			if nxt == pmem.NilAddr || s.nodeKey(nxt) >= key {
				break
			}
			cur = nxt
		}
		preds[lvl] = cur
	}
	return s.next(cur, 0)
}

// Insert implements SortedMap.
func (s *RespctSkipList) Insert(th int, key, value uint64) bool {
	if key == 0 {
		panic("structures: skiplist key 0 is reserved")
	}
	t := s.rt.Thread(th)
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.findPredecessors(key, &preds)
	if cand != pmem.NilAddr && s.nodeKey(cand) == key {
		t.Update(s.nodeValue(cand), value)
		return false
	}
	lvl := skipLevel(key)
	n := s.rt.Arena().Alloc(t, skipMaxLevel+1, 2)
	if n == pmem.NilAddr {
		panic("structures: RespctSkipList out of persistent memory")
	}
	t.Init(s.nodeValue(n), value)
	raw := core.RawBase(n, skipMaxLevel+1)
	t.StoreTracked(raw, key)
	t.StoreTracked(raw+8, uint64(lvl))
	for i := 0; i < lvl; i++ {
		t.Init(core.Cell(n, 1+i), uint64(s.next(preds[i], i)))
	}
	// Link bottom-up; each link is undo-logged, so a crash rolls the whole
	// insertion back atomically with its epoch.
	for i := 0; i < lvl; i++ {
		t.UpdateAddr(s.nextCell(preds[i], i), n)
	}
	return true
}

// Remove implements SortedMap.
func (s *RespctSkipList) Remove(th int, key uint64) bool {
	t := s.rt.Thread(th)
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.findPredecessors(key, &preds)
	if cand == pmem.NilAddr || s.nodeKey(cand) != key {
		return false
	}
	lvl := s.nodeLvl(cand)
	for i := 0; i < lvl; i++ {
		if s.next(preds[i], i) == cand {
			t.Update(s.nextCell(preds[i], i), uint64(s.next(cand, i)))
		}
	}
	s.rt.Arena().Free(t, cand)
	return true
}

// Get implements SortedMap.
func (s *RespctSkipList) Get(th int, key uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.findPredecessors(key, &preds)
	if cand != pmem.NilAddr && s.nodeKey(cand) == key {
		return s.rt.Read(s.nodeValue(cand)), true
	}
	return 0, false
}

// Scan implements SortedMap.
func (s *RespctSkipList) Scan(th int, from, to uint64, fn func(key, value uint64) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	n := s.findPredecessors(from, &preds)
	for n != pmem.NilAddr {
		k := s.nodeKey(n)
		if k > to {
			return
		}
		if !fn(k, s.rt.Read(s.nodeValue(n))) {
			return
		}
		n = s.next(n, 0)
	}
}

// PerOp places the per-operation restart point.
func (s *RespctSkipList) PerOp(th int) { s.rt.Thread(th).RP(rpSkipOp) }

// ThreadExit implements SortedMap.
func (s *RespctSkipList) ThreadExit(th int) { s.rt.Thread(th).CheckpointAllow() }

// Close implements SortedMap: it releases every runtime thread slot
// (idempotent CheckpointAllow per thread, consistent with ThreadExit) so a
// checkpoint can never stall on a closed skiplist's former workers. The
// persistent state stays intact — OpenRespctSkipList on the same root
// reattaches to it.
func (s *RespctSkipList) Close() {
	for i := 0; i < s.rt.Threads(); i++ {
		s.rt.Thread(i).CheckpointAllow()
	}
}

// Snapshot returns the contents in ascending key order (test helper).
func (s *RespctSkipList) Snapshot() ([]uint64, []uint64) {
	var keys, vals []uint64
	s.Scan(0, 1, ^uint64(0), func(k, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	return keys, vals
}

// TransientSkipList is the same skiplist without fault tolerance, on a
// simulated heap. Node layout (words): [value, next_0..next_15, key, level].
type TransientSkipList struct {
	noopSync
	h     *pmem.Heap
	alloc *pmem.Bump
	mu    sync.Mutex
	head  [skipMaxLevel]pmem.Addr // volatile head tower

	free pmem.Addr
}

const tskipWords = 1 + skipMaxLevel + 2

// NewTransientSkipList creates an empty transient sorted map on h.
func NewTransientSkipList(h *pmem.Heap) *TransientSkipList {
	return &TransientSkipList{h: h, alloc: pmem.NewBumpAll(h)}
}

func (s *TransientSkipList) next(n pmem.Addr, lvl int) pmem.Addr {
	if n == pmem.NilAddr {
		return s.head[lvl]
	}
	return pmem.Addr(s.h.Load64(n + pmem.Addr(8+lvl*8)))
}

//respct:allow rawstore — transient skiplist: no fault tolerance, region discarded on restart
func (s *TransientSkipList) setNext(n pmem.Addr, lvl int, v pmem.Addr) {
	if n == pmem.NilAddr {
		s.head[lvl] = v
		return
	}
	s.h.Store64(n+pmem.Addr(8+lvl*8), uint64(v))
}

func (s *TransientSkipList) key(n pmem.Addr) uint64 {
	return s.h.Load64(n + pmem.Addr(8*(1+skipMaxLevel)))
}

func (s *TransientSkipList) lvl(n pmem.Addr) int {
	return int(s.h.Load64(n + pmem.Addr(8*(2+skipMaxLevel))))
}

func (s *TransientSkipList) find(keyv uint64, preds *[skipMaxLevel]pmem.Addr) pmem.Addr {
	cur := pmem.NilAddr // nil stands for the head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.next(cur, lvl)
			if nxt == pmem.NilAddr || s.key(nxt) >= keyv {
				break
			}
			cur = nxt
		}
		preds[lvl] = cur
	}
	return s.next(cur, 0)
}

// Insert implements SortedMap.
//
//respct:allow rawstore — transient skiplist: no fault tolerance, region discarded on restart
func (s *TransientSkipList) Insert(_ int, key, value uint64) bool {
	if key == 0 {
		panic("structures: skiplist key 0 is reserved")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.find(key, &preds)
	if cand != pmem.NilAddr && s.key(cand) == key {
		s.h.Store64(cand, value)
		return false
	}
	n := s.free
	if n != pmem.NilAddr {
		s.free = pmem.Addr(s.h.Load64(n))
	} else {
		n = s.alloc.Alloc(tskipWords * 8)
		if n == pmem.NilAddr {
			panic("structures: transient skiplist out of memory")
		}
	}
	lvl := skipLevel(key)
	s.h.Store64(n, value)
	s.h.Store64(n+pmem.Addr(8*(1+skipMaxLevel)), key)
	s.h.Store64(n+pmem.Addr(8*(2+skipMaxLevel)), uint64(lvl))
	for i := 0; i < lvl; i++ {
		s.setNext(n, i, s.next(preds[i], i))
	}
	for i := 0; i < lvl; i++ {
		s.setNext(preds[i], i, n)
	}
	return true
}

// Remove implements SortedMap.
//
//respct:allow rawstore — transient skiplist: no fault tolerance, region discarded on restart
func (s *TransientSkipList) Remove(_ int, key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.find(key, &preds)
	if cand == pmem.NilAddr || s.key(cand) != key {
		return false
	}
	for i := 0; i < s.lvl(cand); i++ {
		if s.next(preds[i], i) == cand {
			s.setNext(preds[i], i, s.next(cand, i))
		}
	}
	s.h.Store64(cand, uint64(s.free))
	s.free = cand
	return true
}

// Get implements SortedMap.
func (s *TransientSkipList) Get(_ int, key uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.find(key, &preds)
	if cand != pmem.NilAddr && s.key(cand) == key {
		return s.h.Load64(cand), true
	}
	return 0, false
}

// Scan implements SortedMap.
func (s *TransientSkipList) Scan(_ int, from, to uint64, fn func(key, value uint64) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	n := s.find(from, &preds)
	for n != pmem.NilAddr {
		k := s.key(n)
		if k > to {
			return
		}
		if !fn(k, s.h.Load64(n)) {
			return
		}
		n = s.next(n, 0)
	}
}

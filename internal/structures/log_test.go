package structures

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/respct/respct/internal/core"
)

func TestRespctLogBasics(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	l, err := NewRespctLog(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatal("fresh log not empty")
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte("x"), i%50)))
		idx := l.Append(0, rec)
		if idx != uint64(i) {
			t.Fatalf("append %d returned index %d", i, idx)
		}
		want = append(want, rec)
	}
	if l.Len() != 100 {
		t.Fatalf("Len = %d", l.Len())
	}
	i := 0
	l.ForEach(func(idx uint64, rec []byte) bool {
		if idx != uint64(i) || !bytes.Equal(rec, want[i]) {
			t.Fatalf("record %d = %q, want %q", idx, rec, want[i])
		}
		i++
		return true
	})
	if i != 100 {
		t.Fatalf("iterated %d records", i)
	}
	// Early stop.
	n := 0
	l.ForEach(func(uint64, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRespctLogSegmentGrowth(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	l, err := NewRespctLog(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Records big enough that many segments are needed.
	rec := bytes.Repeat([]byte("seg"), 1000) // 3 KB
	const n = 40                             // ~120 KB total >> one 16 KiB segment
	for i := 0; i < n; i++ {
		l.Append(0, rec)
	}
	count := 0
	l.ForEach(func(i uint64, r []byte) bool {
		if !bytes.Equal(r, rec) {
			t.Fatalf("record %d corrupted (len %d)", i, len(r))
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("iterated %d, want %d", count, n)
	}
}

func TestRespctLogCrashRollsBackAppends(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	l, err := NewRespctLog(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.Append(0, []byte(fmt.Sprintf("durable-%d", i)))
	}
	checkpointAll(rt)

	// Doomed epoch: appends crossing a segment boundary.
	big := bytes.Repeat([]byte("doomed"), 500)
	for i := 0; i < 30; i++ {
		l.Append(0, big)
	}
	rt.Heap().EvictDirtyFraction(0.6, 21)
	rt.Heap().Crash()

	rt2, _, err := core.Recover(rt.Heap(), core.Config{Threads: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := OpenRespctLog(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Len(); got != 20 {
		t.Fatalf("recovered %d records, want 20", got)
	}
	i := 0
	l2.ForEach(func(idx uint64, rec []byte) bool {
		if string(rec) != fmt.Sprintf("durable-%d", idx) {
			t.Fatalf("record %d = %q", idx, rec)
		}
		i++
		return true
	})
	if i != 20 {
		t.Fatalf("iterated %d", i)
	}
	// The log keeps working after recovery, including re-growing.
	for i := 0; i < 30; i++ {
		l2.Append(0, big)
	}
	if l2.Len() != 50 {
		t.Fatalf("post-recovery Len = %d", l2.Len())
	}
	seen := 0
	l2.ForEach(func(uint64, []byte) bool { seen++; return true })
	if seen != 50 {
		t.Fatalf("post-recovery iterated %d", seen)
	}
}

func TestRespctLogEmptyRecord(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	l, err := NewRespctLog(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(0, nil)
	l.Append(0, []byte("after-empty"))
	var got [][]byte
	l.ForEach(func(_ uint64, rec []byte) bool {
		got = append(got, append([]byte(nil), rec...))
		return true
	})
	if len(got) != 2 || len(got[0]) != 0 || string(got[1]) != "after-empty" {
		t.Fatalf("records = %q", got)
	}
}

package structures

import (
	"fmt"
	"sync"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
)

// strHash is FNV-1a over the key bytes; the string skiplist derives its
// deterministic tower heights from it (see skipLevel).
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// RespctStrSkipList is a persistent ordered map from string keys to 8-byte
// values — the string-keyed sibling of RespctSkipList that backs the server's
// SCAN command (keys in lexicographic byte order). The programming model is
// identical: a single mutex serialises every operation, forward pointers and
// values are InCLL cells whose updates are individually undo-logged, and key
// bytes are write-once RAW data, so a crashed epoch rolls a whole insertion
// or removal back atomically and no partial-link state can survive recovery.
//
// Node payload: cells [value, next_0 .. next_{skipMaxLevel-1}] (the full
// tower is always reserved so offsets are fixed), raw words
// [keyLen<<32|level, key bytes...].
type RespctStrSkipList struct {
	rt   *core.Runtime
	desc pmem.Addr // head tower: skipMaxLevel next cells
	mu   sync.Mutex
}

// NewRespctStrSkipList creates an empty persistent ordered map published
// under heap root slot rootIdx.
func NewRespctStrSkipList(rt *core.Runtime, rootIdx int) (*RespctStrSkipList, error) {
	sys := rt.Sys()
	desc := rt.Arena().AllocCells(sys, skipMaxLevel)
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating skiplist head")
	}
	for i := 0; i < skipMaxLevel; i++ {
		sys.Init(core.Cell(desc, i), 0)
	}
	sys.Update(rt.RootInCLL(rootIdx), uint64(desc))
	return &RespctStrSkipList{rt: rt, desc: desc}, nil
}

// OpenRespctStrSkipList reattaches to an ordered map published under rootIdx
// after recovery.
func OpenRespctStrSkipList(rt *core.Runtime, rootIdx int) (*RespctStrSkipList, error) {
	desc := rt.ReadAddr(rt.RootInCLL(rootIdx))
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: no skiplist registered under root %d", rootIdx)
	}
	return &RespctStrSkipList{rt: rt, desc: desc}, nil
}

func (s *RespctStrSkipList) nodeValue(n pmem.Addr) core.InCLL { return core.Cell(n, 0) }

func (s *RespctStrSkipList) nodeMeta(n pmem.Addr) (keyLen, lvl int) {
	w := s.rt.Heap().Load64(core.RawBase(n, skipMaxLevel+1))
	return int(w >> 32), int(w & 0xFFFFFFFF)
}

// nodeKey materialises n's key (allocates; scans and snapshots only — probes
// compare in place with cmpKey).
func (s *RespctStrSkipList) nodeKey(n pmem.Addr) string {
	raw := core.RawBase(n, skipMaxLevel+1)
	kl := int(s.rt.Heap().Load64(raw) >> 32)
	return string(s.rt.Heap().LoadBytes(raw+8, kl))
}

// cmpKey lexicographically compares n's key bytes against key without
// materialising them, reading one packed word per 8 bytes (StoreString packs
// little-endian, so byte j of a word is (w >> 8j) & 0xFF).
func (s *RespctStrSkipList) cmpKey(n pmem.Addr, key string) int {
	raw := core.RawBase(n, skipMaxLevel+1)
	h := s.rt.Heap()
	kl := int(h.Load64(raw) >> 32)
	base := raw + 8
	m := kl
	if len(key) < m {
		m = len(key)
	}
	for i := 0; i < m; {
		w := h.Load64(base + pmem.Addr(i/8*8))
		stop := m - i
		if stop > 8 {
			stop = 8
		}
		for j := 0; j < stop; j++ {
			b := byte(w >> (8 * j))
			if b != key[i+j] {
				if b < key[i+j] {
					return -1
				}
				return 1
			}
		}
		i += stop
	}
	switch {
	case kl < len(key):
		return -1
	case kl > len(key):
		return 1
	}
	return 0
}

func (s *RespctStrSkipList) next(n pmem.Addr, lvl int) pmem.Addr {
	if n == s.desc {
		return s.rt.ReadAddr(core.Cell(s.desc, lvl))
	}
	return s.rt.ReadAddr(core.Cell(n, 1+lvl))
}

func (s *RespctStrSkipList) nextCell(n pmem.Addr, lvl int) core.InCLL {
	if n == s.desc {
		return core.Cell(s.desc, lvl)
	}
	return core.Cell(n, 1+lvl)
}

// findPredecessors fills preds with the rightmost node ordered strictly
// before key at each level and returns the level-0 successor candidate.
func (s *RespctStrSkipList) findPredecessors(key string, preds *[skipMaxLevel]pmem.Addr) pmem.Addr {
	cur := s.desc
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.next(cur, lvl)
			if nxt == pmem.NilAddr || s.cmpKey(nxt, key) >= 0 {
				break
			}
			cur = nxt
		}
		preds[lvl] = cur
	}
	return s.next(cur, 0)
}

// Insert adds or overwrites key and reports whether it was absent. An
// overwrite is one logged cell update; an insertion allocates the node,
// writes the key bytes once, and links bottom-up with logged pointer swings.
func (s *RespctStrSkipList) Insert(th int, key string, value uint64) bool {
	t := s.rt.Thread(th)
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.findPredecessors(key, &preds)
	if cand != pmem.NilAddr && s.cmpKey(cand, key) == 0 {
		t.Update(s.nodeValue(cand), value)
		return false
	}
	lvl := skipLevel(strHash(key))
	keyWords := (len(key) + 7) / 8
	n := s.rt.Arena().Alloc(t, skipMaxLevel+1, 1+keyWords)
	if n == pmem.NilAddr {
		panic("structures: RespctStrSkipList out of persistent memory")
	}
	t.Init(s.nodeValue(n), value)
	raw := core.RawBase(n, skipMaxLevel+1)
	h := s.rt.Heap()
	h.Store64(raw, uint64(len(key))<<32|uint64(lvl))
	h.StoreString(raw+8, key)
	t.AddModifiedRange(raw, 8+keyWords*8)
	for i := 0; i < lvl; i++ {
		t.Init(core.Cell(n, 1+i), uint64(s.next(preds[i], i)))
	}
	for i := 0; i < lvl; i++ {
		t.UpdateAddr(s.nextCell(preds[i], i), n)
	}
	return true
}

// Remove deletes key and reports whether it was present.
func (s *RespctStrSkipList) Remove(th int, key string) bool {
	t := s.rt.Thread(th)
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.findPredecessors(key, &preds)
	if cand == pmem.NilAddr || s.cmpKey(cand, key) != 0 {
		return false
	}
	_, lvl := s.nodeMeta(cand)
	for i := 0; i < lvl; i++ {
		if s.next(preds[i], i) == cand {
			t.Update(s.nextCell(preds[i], i), uint64(s.next(cand, i)))
		}
	}
	s.rt.Arena().Free(t, cand)
	return true
}

// Get returns the value stored under key.
func (s *RespctStrSkipList) Get(th int, key string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	cand := s.findPredecessors(key, &preds)
	if cand != pmem.NilAddr && s.cmpKey(cand, key) == 0 {
		return s.rt.Read(s.nodeValue(cand)), true
	}
	return 0, false
}

// Scan calls fn for each pair with from <= key (and key <= to when to is
// non-empty; an empty to means unbounded) in ascending lexicographic order
// until fn returns false. The skiplist's mutex is held for the whole scan,
// so fn observes an atomic cut of the index and any addresses it reads
// through values cannot be freed mid-scan by concurrent writers that
// maintain this index before freeing.
func (s *RespctStrSkipList) Scan(th int, from, to string, fn func(key string, value uint64) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]pmem.Addr
	n := s.findPredecessors(from, &preds)
	for n != pmem.NilAddr {
		if to != "" && s.cmpKey(n, to) > 0 {
			return
		}
		if !fn(s.nodeKey(n), s.rt.Read(s.nodeValue(n))) {
			return
		}
		n = s.next(n, 0)
	}
}

// PerOp places the per-operation restart point.
func (s *RespctStrSkipList) PerOp(th int) { s.rt.Thread(th).RP(rpSkipOp) }

// ThreadExit marks worker th finished so checkpoints no longer wait for it.
func (s *RespctStrSkipList) ThreadExit(th int) { s.rt.Thread(th).CheckpointAllow() }

// Close releases every runtime thread slot (idempotent CheckpointAllow per
// thread, consistent with ThreadExit), so a checkpoint can never stall on a
// closed structure's former workers.
func (s *RespctStrSkipList) Close() {
	for i := 0; i < s.rt.Threads(); i++ {
		s.rt.Thread(i).CheckpointAllow()
	}
}

// Snapshot returns the contents in ascending key order (test helper).
func (s *RespctStrSkipList) Snapshot() ([]string, []uint64) {
	var keys []string
	var vals []uint64
	s.Scan(0, "", "", func(k string, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	return keys, vals
}

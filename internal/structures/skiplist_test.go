package structures

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
)

func sortedMapBattery(t *testing.T, s SortedMap) {
	t.Helper()
	if _, ok := s.Get(0, 10); ok {
		t.Fatal("empty map hit")
	}
	keys := []uint64{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	for _, k := range keys {
		if !s.Insert(0, k, k*10) {
			t.Fatalf("insert %d reported existing", k)
		}
	}
	if s.Insert(0, 5, 555) {
		t.Fatal("re-insert reported new")
	}
	if v, ok := s.Get(0, 5); !ok || v != 555 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	// Ordered scan.
	var got []uint64
	s.Scan(0, 1, 100, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("scan saw %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order: %v", got)
		}
	}
	// Bounded scan.
	got = got[:0]
	s.Scan(0, 3, 7, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 || got[0] != 3 || got[4] != 7 {
		t.Fatalf("bounded scan = %v", got)
	}
	// Early stop.
	count := 0
	s.Scan(0, 1, 100, func(k, v uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early-stop scan visited %d", count)
	}
	// Removals.
	if !s.Remove(0, 5) || s.Remove(0, 5) {
		t.Fatal("remove semantics broken")
	}
	if _, ok := s.Get(0, 5); ok {
		t.Fatal("removed key found")
	}
	for _, k := range []uint64{1, 2, 3, 4, 6, 7, 8, 9, 10} {
		if _, ok := s.Get(0, k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestTransientSkipListBattery(t *testing.T) {
	sortedMapBattery(t, NewTransientSkipList(pmem.New(pmem.DRAMConfig(32<<20))))
}

func TestRespctSkipListBattery(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	s, err := NewRespctSkipList(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	sortedMapBattery(t, s)
}

func TestRespctSkipListCrashRecovery(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	s, err := NewRespctSkipList(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		s.Insert(0, k*3, k)
	}
	for k := uint64(1); k <= 50; k++ {
		s.Remove(0, k*6) // thin it out
	}
	checkpointAll(rt)
	wantK, wantV := s.Snapshot()

	// Doomed epoch: structural churn everywhere.
	for k := uint64(1); k <= 100; k++ {
		s.Insert(0, k*3+1, 999)
		s.Remove(0, k*9)
	}
	rt.Heap().EvictDirtyFraction(0.5, 77)
	rt.Heap().Crash()

	rt2, _, err := core.Recover(rt.Heap(), core.Config{Threads: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenRespctSkipList(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotK, gotV := s2.Snapshot()
	if len(gotK) != len(wantK) {
		t.Fatalf("recovered %d keys, want %d", len(gotK), len(wantK))
	}
	for i := range wantK {
		if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
			t.Fatalf("entry %d = (%d,%d), want (%d,%d)", i, gotK[i], gotV[i], wantK[i], wantV[i])
		}
	}
	// Still fully operational, including scans across recovered towers.
	s2.Insert(0, 2, 22)
	if v, ok := s2.Get(0, 2); !ok || v != 22 {
		t.Fatal("post-recovery insert failed")
	}
}

// Property: the skiplist matches a model ordered map under random operation
// sequences with a crash at a random point.
func TestQuickRespctSkipListMatchesModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  uint64
	}
	f := func(ops []op, crashAt uint16, seed int64) bool {
		rt := newRespctFixture(t, 1, 0)
		s, err := NewRespctSkipList(rt, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkpointAll(rt)
		model := map[uint64]uint64{}
		certified := map[uint64]uint64{}
		crashPoint := -1
		if len(ops) > 0 {
			crashPoint = int(crashAt) % len(ops)
		}
		for i, o := range ops {
			k := uint64(o.Key)%512 + 1
			switch o.Kind % 5 {
			case 0, 1:
				s.Insert(0, k, o.Val)
				model[k] = o.Val
			case 2:
				s.Remove(0, k)
				delete(model, k)
			case 3:
				v, ok := s.Get(0, k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 4:
				checkpointAll(rt)
				certified = map[uint64]uint64{}
				for kk, vv := range model {
					certified[kk] = vv
				}
			}
			if i == crashPoint {
				rt.Heap().EvictDirtyFraction(0.5, seed)
				rt.Heap().Crash()
				rt2, _, err := core.Recover(rt.Heap(), core.Config{Threads: 1}, 1)
				if err != nil {
					t.Fatal(err)
				}
				s2, err := OpenRespctSkipList(rt2, 0)
				if err != nil {
					t.Fatal(err)
				}
				gotK, gotV := s2.Snapshot()
				if len(gotK) != len(certified) {
					return false
				}
				for j, kk := range gotK {
					if certified[kk] != gotV[j] {
						return false
					}
				}
				return true
			}
		}
		// No crash: final contents must match the model, in order.
		gotK, gotV := s.Snapshot()
		if len(gotK) != len(model) {
			return false
		}
		wantKeys := make([]uint64, 0, len(model))
		for kk := range model {
			wantKeys = append(wantKeys, kk)
		}
		sort.Slice(wantKeys, func(a, b int) bool { return wantKeys[a] < wantKeys[b] })
		for j, kk := range wantKeys {
			if gotK[j] != kk || gotV[j] != model[kk] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(40)}); err != nil {
		t.Fatal(err)
	}
}

func TestRespctSkipListConcurrent(t *testing.T) {
	const threads = 4
	rt := newRespctFixture(t, threads, 128<<20)
	s, err := NewRespctSkipList(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckpointIdle()
	ck := rt.StartCheckpointer(5_000_000) // 5ms
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(th + 1)))
			base := uint64(th)*100000 + 1
			for op := 0; op < 300; op++ {
				k := base + uint64(rng.Intn(200))
				switch rng.Intn(3) {
				case 0:
					s.Insert(th, k, k)
				case 1:
					s.Remove(th, k)
				default:
					if v, ok := s.Get(th, k); ok && v != k {
						t.Errorf("key %d has foreign value %d", k, v)
					}
				}
				s.PerOp(th)
			}
			s.ThreadExit(th)
		}(th)
	}
	wg.Wait()
	ck.Stop()
	// Global order invariant after concurrent churn.
	keys, _ := s.Snapshot()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("order violated at %d: %d >= %d", i, keys[i-1], keys[i])
		}
	}
}

func TestSkipLevelDistribution(t *testing.T) {
	counts := make([]int, skipMaxLevel+1)
	for k := uint64(1); k <= 100000; k++ {
		counts[skipLevel(k)]++
	}
	// Roughly geometric: level 1 about half, level 2 about a quarter.
	if counts[1] < 40000 || counts[1] > 60000 {
		t.Fatalf("level-1 count %d implausible", counts[1])
	}
	if counts[2] < 15000 || counts[2] > 35000 {
		t.Fatalf("level-2 count %d implausible", counts[2])
	}
	if counts[skipMaxLevel] > 100 {
		t.Fatalf("max-level count %d implausible", counts[skipMaxLevel])
	}
}

//respct:allow rawstore — transient flavours have no fault-tolerance logic by design (the paper's Transient baselines); their region is discarded on restart, never recovered
package structures

import (
	"sync"

	"github.com/respct/respct/internal/pmem"
)

// The transient flavours run the exact lock discipline of the persistent
// ones but store their nodes in a simulated heap with no fault-tolerance
// logic at all. Instantiated over a DRAM-configured heap they are the
// paper's Transient<DRAM> baseline; over an NVMM-configured heap they are
// Transient<NVMM> (§5.2's overhead analysis): same code, only the latency
// model differs.

// hashMix is a 64-bit finaliser (splitmix64) used by every map flavour so
// the bucket distribution is identical across systems.
func hashMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// node layout for the transient flavours, in words: [next, key, value].
const tnodeWords = 3

// per-bucket in-line layout, in words: [key0, val0, key1, val1, overflow].
const tbucketWords = 5

// TransientMap is a lock-per-bucket hash map over a simulated heap, with
// the Synch-framework layout the paper ports: two in-line key/value slots
// per bucket plus a chained overflow list for collisions beyond two.
type TransientMap struct {
	noopSync
	h       *pmem.Heap
	alloc   *pmem.Bump
	buckets pmem.Addr // array of tbucketWords-word buckets
	nBucket uint64
	locks   []sync.Mutex

	freeMu sync.Mutex
	free   pmem.Addr // volatile free list of recycled overflow nodes
}

// NewTransientMap creates a transient map with nBucket buckets on h,
// allocating from the heap's whole data area.
func NewTransientMap(h *pmem.Heap, nBucket int) *TransientMap {
	m := &TransientMap{
		h:       h,
		alloc:   pmem.NewBumpAll(h),
		nBucket: uint64(nBucket),
		locks:   make([]sync.Mutex, nBucket),
	}
	m.buckets = m.alloc.Alloc(nBucket * tbucketWords * 8)
	if m.buckets == pmem.NilAddr {
		panic("structures: heap too small for bucket array")
	}
	return m
}

func (m *TransientMap) bucket(key uint64) (pmem.Addr, *sync.Mutex) {
	b := hashMix(key) % m.nBucket
	return m.buckets + pmem.Addr(b*tbucketWords*8), &m.locks[b]
}

func (m *TransientMap) newNode(next pmem.Addr, key, value uint64) pmem.Addr {
	m.freeMu.Lock()
	n := m.free
	if n != pmem.NilAddr {
		m.free = pmem.Addr(m.h.Load64(n))
	}
	m.freeMu.Unlock()
	if n == pmem.NilAddr {
		n = m.alloc.Alloc(tnodeWords * 8)
		if n == pmem.NilAddr {
			panic("structures: transient map out of memory")
		}
	}
	m.h.Store64(n, uint64(next))
	m.h.Store64(n+8, key)
	m.h.Store64(n+16, value)
	return n
}

func (m *TransientMap) freeNode(n pmem.Addr) {
	m.freeMu.Lock()
	m.h.Store64(n, uint64(m.free))
	m.free = n
	m.freeMu.Unlock()
}

// Insert implements Map.
func (m *TransientMap) Insert(_ int, key, value uint64) bool {
	bkt, mu := m.bucket(key)
	mu.Lock()
	defer mu.Unlock()
	freeSlot := pmem.NilAddr
	for s := 0; s < 2; s++ {
		slot := bkt + pmem.Addr(s*16)
		k := m.h.Load64(slot)
		if k == key {
			m.h.Store64(slot+8, value)
			return false
		}
		if k == 0 && freeSlot == pmem.NilAddr {
			freeSlot = slot
		}
	}
	ovf := bkt + 32
	for n := pmem.Addr(m.h.Load64(ovf)); n != pmem.NilAddr; n = pmem.Addr(m.h.Load64(n)) {
		if m.h.Load64(n+8) == key {
			m.h.Store64(n+16, value)
			return false
		}
	}
	if freeSlot != pmem.NilAddr {
		m.h.Store64(freeSlot+8, value)
		m.h.Store64(freeSlot, key)
		return true
	}
	m.h.Store64(ovf, uint64(m.newNode(pmem.Addr(m.h.Load64(ovf)), key, value)))
	return true
}

// Remove implements Map.
func (m *TransientMap) Remove(_ int, key uint64) bool {
	bkt, mu := m.bucket(key)
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < 2; s++ {
		slot := bkt + pmem.Addr(s*16)
		if m.h.Load64(slot) == key {
			m.h.Store64(slot, 0)
			return true
		}
	}
	prev := bkt + 32
	for n := pmem.Addr(m.h.Load64(prev)); n != pmem.NilAddr; n = pmem.Addr(m.h.Load64(n)) {
		if m.h.Load64(n+8) == key {
			m.h.Store64(prev, m.h.Load64(n))
			m.freeNode(n)
			return true
		}
		prev = n
	}
	return false
}

// Get implements Map.
func (m *TransientMap) Get(_ int, key uint64) (uint64, bool) {
	bkt, mu := m.bucket(key)
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < 2; s++ {
		slot := bkt + pmem.Addr(s*16)
		if m.h.Load64(slot) == key {
			return m.h.Load64(slot + 8), true
		}
	}
	for n := pmem.Addr(m.h.Load64(bkt + 32)); n != pmem.NilAddr; n = pmem.Addr(m.h.Load64(n)) {
		if m.h.Load64(n+8) == key {
			return m.h.Load64(n + 16), true
		}
	}
	return 0, false
}

// Len counts entries (test helper; takes every bucket lock in turn).
func (m *TransientMap) Len() int {
	total := 0
	for b := uint64(0); b < m.nBucket; b++ {
		m.locks[b].Lock()
		bkt := m.buckets + pmem.Addr(b*tbucketWords*8)
		for s := 0; s < 2; s++ {
			if m.h.Load64(bkt+pmem.Addr(s*16)) != 0 {
				total++
			}
		}
		for n := pmem.Addr(m.h.Load64(bkt + 32)); n != pmem.NilAddr; n = pmem.Addr(m.h.Load64(n)) {
			total++
		}
		m.locks[b].Unlock()
	}
	return total
}

// TransientQueue is a single-lock linked FIFO over a simulated heap,
// mirroring the paper's queue micro-benchmark. Node layout: [next, value].
type TransientQueue struct {
	noopSync
	h     *pmem.Heap
	alloc *pmem.Bump
	mu    sync.Mutex
	head  pmem.Addr
	tail  pmem.Addr
	free  pmem.Addr
}

// NewTransientQueue creates an empty transient queue on h.
func NewTransientQueue(h *pmem.Heap) *TransientQueue {
	return &TransientQueue{h: h, alloc: pmem.NewBumpAll(h)}
}

// Enqueue implements Queue.
func (q *TransientQueue) Enqueue(_ int, v uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.free
	if n != pmem.NilAddr {
		q.free = pmem.Addr(q.h.Load64(n))
	} else {
		n = q.alloc.Alloc(16)
		if n == pmem.NilAddr {
			panic("structures: transient queue out of memory")
		}
	}
	q.h.Store64(n, 0)
	q.h.Store64(n+8, v)
	if q.tail == pmem.NilAddr {
		q.head, q.tail = n, n
	} else {
		q.h.Store64(q.tail, uint64(n))
		q.tail = n
	}
}

// Dequeue implements Queue.
func (q *TransientQueue) Dequeue(_ int) (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.head
	if n == pmem.NilAddr {
		return 0, false
	}
	v := q.h.Load64(n + 8)
	q.head = pmem.Addr(q.h.Load64(n))
	if q.head == pmem.NilAddr {
		q.tail = pmem.NilAddr
	}
	q.h.Store64(n, uint64(q.free))
	q.free = n
	return v, true
}

// Len counts queued elements (test helper).
func (q *TransientQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := 0
	for n := q.head; n != pmem.NilAddr; n = pmem.Addr(q.h.Load64(n)) {
		total++
	}
	return total
}

// Package structures provides the two concurrent data structures the paper
// evaluates — a lock-based FIFO queue and a hash map with one lock per
// bucket (§5.1) — in several flavours: transient on DRAM, transient on NVMM,
// persistent with ResPCT, and adapters over the baseline systems. All
// flavours share the Map and Queue interfaces so the benchmark harness can
// drive them interchangeably.
package structures

// Map is a concurrent hash map of 8-byte keys to 8-byte values. th is the
// worker index of the calling goroutine (each index must be used by one
// goroutine at a time). Key 0 is reserved.
type Map interface {
	// Insert adds or overwrites key and reports whether it was absent.
	Insert(th int, key, value uint64) bool
	// Remove deletes key and reports whether it was present.
	Remove(th int, key uint64) bool
	// Get returns the value stored under key.
	Get(th int, key uint64) (uint64, bool)
	// PerOp is called by drivers once per completed operation; persistent
	// flavours place their restart point here.
	PerOp(th int)
	// ThreadExit marks worker th as finished so checkpoints no longer
	// wait for it.
	ThreadExit(th int)
	// Close releases background machinery (checkpointers, servers).
	Close()
}

// Queue is a concurrent FIFO of 8-byte values with the same threading
// conventions as Map.
type Queue interface {
	Enqueue(th int, v uint64)
	Dequeue(th int) (uint64, bool)
	PerOp(th int)
	ThreadExit(th int)
	Close()
}

// noopSync provides the transient flavours' empty synchronisation hooks.
type noopSync struct{}

func (noopSync) PerOp(int)      {}
func (noopSync) ThreadExit(int) {}
func (noopSync) Close()         {}

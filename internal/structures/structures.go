//respct:exportdoc

// Package structures provides the concurrent data structures the paper
// evaluates — a lock-based FIFO queue and a hash map with one lock per
// bucket (§5.1) — plus the ordered and append-only structures the server's
// multi-model surface is built on (skiplists for range scans, a record log
// for streams), in several flavours: transient on DRAM, transient on NVMM,
// persistent with ResPCT, and adapters over the baseline systems. The map
// and queue flavours share the Map and Queue interfaces so the benchmark
// harness can drive them interchangeably; the persistent flavours all ride
// the same InCLL undo machinery, so every mutation is a handful of logged
// cell updates over write-once RAW payloads and a crashed epoch rolls back
// atomically (see docs/COMMANDS.md for the per-command durability schemes).
package structures

// Map is a concurrent hash map of 8-byte keys to 8-byte values. th is the
// worker index of the calling goroutine (each index must be used by one
// goroutine at a time). Key 0 is reserved.
type Map interface {
	// Insert adds or overwrites key and reports whether it was absent.
	Insert(th int, key, value uint64) bool
	// Remove deletes key and reports whether it was present.
	Remove(th int, key uint64) bool
	// Get returns the value stored under key.
	Get(th int, key uint64) (uint64, bool)
	// PerOp is called by drivers once per completed operation; persistent
	// flavours place their restart point here.
	PerOp(th int)
	// ThreadExit marks worker th as finished so checkpoints no longer
	// wait for it.
	ThreadExit(th int)
	// Close releases background machinery (checkpointers, servers).
	Close()
}

// Queue is a concurrent FIFO of 8-byte values with the same threading
// conventions as Map.
type Queue interface {
	// Enqueue appends v at the tail.
	Enqueue(th int, v uint64)
	// Dequeue removes and returns the head value, or false when empty.
	Dequeue(th int) (uint64, bool)
	// PerOp is called by drivers once per completed operation; persistent
	// flavours place their restart point here.
	PerOp(th int)
	// ThreadExit marks worker th as finished so checkpoints no longer
	// wait for it.
	ThreadExit(th int)
	// Close releases background machinery and runtime thread slots.
	Close()
}

// noopSync provides the transient flavours' empty synchronisation hooks.
type noopSync struct{}

func (noopSync) PerOp(int)      {}
func (noopSync) ThreadExit(int) {}
func (noopSync) Close()         {}

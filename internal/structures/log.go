package structures

import (
	"fmt"
	"sync"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
)

// RespctLog is a persistent append-only record log managed by ResPCT — the
// canonical RAW-data structure of the paper's §3.3.2: record bytes are
// written exactly once (plain tracked stores, no undo logging), and the only
// logged variables are the tail cursor and record count, whose rollback
// makes a crashed epoch's appends vanish atomically.
//
// Records are length-prefixed byte strings packed into fixed-size segment
// blocks; a segment chain grows as needed. Appends take the log's mutex;
// reads iterate a consistent prefix under the same mutex.
type RespctLog struct {
	rt   *core.Runtime
	desc pmem.Addr
	mu   sync.Mutex

	// volatile mirrors of the persistent cursor (rebuilt on open)
	tailSeg pmem.Addr
}

const (
	// logSegPayloadWords is the per-segment record area: segments are
	// blocks of [next(1 raw word) | payload...].
	logSegPayloadWords = 2040 // 16 KiB segments: 1 + 2040 words -> 16 KiB class
	logSegHeaderWords  = 1    // word 0: next segment address

	// descriptor cells: 0 count, 1 tail offset (words into current seg
	// payload), 2 tail segment address; raw word 0: head segment address.
	logDescCells = 3

	rpLogOp uint64 = 0x4c6f674f70 // "LogOp"

	// logSegEndMarker in a length word tells readers the writer moved to
	// the next segment.
	logSegEndMarker = ^uint64(0)
)

// NewRespctLog creates an empty persistent log published under heap root
// slot rootIdx.
func NewRespctLog(rt *core.Runtime, rootIdx int) (*RespctLog, error) {
	sys := rt.Sys()
	desc := rt.Arena().Alloc(sys, logDescCells, 1)
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating log descriptor")
	}
	seg := rt.Arena().AllocRaw(sys, logSegHeaderWords+logSegPayloadWords)
	if seg == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating log segment")
	}
	sys.StoreTracked(seg, 0) // next = nil
	sys.Init(core.Cell(desc, 0), 0)
	sys.Init(core.Cell(desc, 1), 0)
	sys.Init(core.Cell(desc, 2), uint64(seg))
	sys.StoreTracked(core.RawBase(desc, logDescCells), uint64(seg))
	sys.Update(rt.RootInCLL(rootIdx), uint64(desc))
	return &RespctLog{rt: rt, desc: desc, tailSeg: seg}, nil
}

// OpenRespctLog reattaches to a log published under rootIdx after recovery.
func OpenRespctLog(rt *core.Runtime, rootIdx int) (*RespctLog, error) {
	desc := rt.ReadAddr(rt.RootInCLL(rootIdx))
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: no log registered under root %d", rootIdx)
	}
	l := &RespctLog{rt: rt, desc: desc}
	l.tailSeg = rt.ReadAddr(core.Cell(desc, 2))
	return l, nil
}

// NewRespctLogAt creates an empty log descriptor with worker thread th and
// does NOT publish it to a root: the caller must link Desc() into a
// reachable, logged location in the same epoch (the server's named-structure
// directory does), or the allocation rolls back with the epoch and the log
// never existed.
func NewRespctLogAt(rt *core.Runtime, th int) (*RespctLog, error) {
	t := rt.Thread(th)
	desc := rt.Arena().Alloc(t, logDescCells, 1)
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating log descriptor")
	}
	seg := rt.Arena().AllocRaw(t, logSegHeaderWords+logSegPayloadWords)
	if seg == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating log segment")
	}
	t.StoreTracked(seg, 0) // next = nil
	t.Init(core.Cell(desc, 0), 0)
	t.Init(core.Cell(desc, 1), 0)
	t.Init(core.Cell(desc, 2), uint64(seg))
	t.StoreTracked(core.RawBase(desc, logDescCells), uint64(seg))
	return &RespctLog{rt: rt, desc: desc, tailSeg: seg}, nil
}

// OpenRespctLogAt reattaches to the log descriptor at desc (recovered from a
// directory rather than a root slot).
func OpenRespctLogAt(rt *core.Runtime, desc pmem.Addr) *RespctLog {
	l := &RespctLog{rt: rt, desc: desc}
	l.tailSeg = rt.ReadAddr(core.Cell(desc, 2))
	return l
}

// Desc returns the log's descriptor address, the handle a directory links to
// make an unpublished log durable.
func (l *RespctLog) Desc() pmem.Addr { return l.desc }

func (l *RespctLog) countCell() core.InCLL { return core.Cell(l.desc, 0) }
func (l *RespctLog) offCell() core.InCLL   { return core.Cell(l.desc, 1) }
func (l *RespctLog) tailCell() core.InCLL  { return core.Cell(l.desc, 2) }
func (l *RespctLog) headAddr() pmem.Addr   { return core.RawBase(l.desc, logDescCells) }
func segPayload(seg pmem.Addr) pmem.Addr   { return seg + logSegHeaderWords*8 }
func segNext(h *pmem.Heap, s pmem.Addr) pmem.Addr {
	return pmem.Addr(h.Load64(s))
}

// Append adds a record (at most 8 KiB) and returns its index. th is the
// calling worker.
func (l *RespctLog) Append(th int, record []byte) uint64 {
	if len(record) > logSegPayloadWords*4 {
		panic("structures: log record too large")
	}
	t := l.rt.Thread(th)
	h := l.rt.Heap()
	needWords := 1 + (len(record)+7)/8 // length word + payload

	l.mu.Lock()
	defer l.mu.Unlock()
	off := int(l.rt.Read(l.offCell()))
	if off+needWords > logSegPayloadWords {
		// Grow: mark the leftover space, then allocate and link a fresh segment.
		// The link and marker are raw write-once words; rolling back the
		// tail cursor and count is what un-publishes them after a crash.
		if off < logSegPayloadWords {
			t.StoreTracked(segPayload(l.tailSeg)+pmem.Addr(off*8), logSegEndMarker)
		}
		seg := l.rt.Arena().AllocRaw(t, logSegHeaderWords+logSegPayloadWords)
		if seg == pmem.NilAddr {
			panic("structures: RespctLog out of persistent memory")
		}
		t.StoreTracked(seg, 0)
		t.StoreTracked(l.tailSeg, uint64(seg))
		t.UpdateAddr(l.tailCell(), seg)
		t.Update(l.offCell(), 0)
		l.tailSeg = seg
		off = 0
	}
	base := segPayload(l.tailSeg) + pmem.Addr(off*8)
	h.Store64(base, uint64(len(record)))
	h.StoreBytes(base+8, record)
	t.AddModifiedRange(base, needWords*8)
	t.Update(l.offCell(), uint64(off+needWords))
	t.Update(l.countCell(), l.rt.Read(l.countCell())+1)
	return l.rt.Read(l.countCell()) - 1
}

// Len returns the number of records.
func (l *RespctLog) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rt.Read(l.countCell())
}

// ForEach calls fn with each record in append order until fn returns false.
// It holds the log's mutex for the duration.
func (l *RespctLog) ForEach(fn func(i uint64, record []byte) bool) {
	l.Range(0, ^uint64(0), fn)
}

// Range calls fn with each record whose index i satisfies from <= i and
// i < from+count, in append order, until fn returns false — the read path of
// the server's LRANGE. Indices are stable: records are append-only and never
// compacted. It walks the segment chain from the head (records before from
// are skipped by their length words without materialising them) and holds
// the log's mutex for the duration, so fn observes an atomic prefix.
func (l *RespctLog) Range(from, count uint64, fn func(i uint64, record []byte) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := l.rt.Heap()
	total := l.rt.Read(l.countCell())
	end := from + count
	if count > total || end > total { // also catches from+count overflow
		end = total
	}
	seg := pmem.Addr(h.Load64(l.headAddr()))
	off := 0
	for i := uint64(0); i < end; i++ {
		// Advance past exhausted segments (explicit end markers, or no
		// room left for even a length word).
		for off >= logSegPayloadWords || h.Load64(segPayload(seg)+pmem.Addr(off*8)) == logSegEndMarker {
			seg = segNext(h, seg)
			off = 0
		}
		base := segPayload(seg) + pmem.Addr(off*8)
		n := int(h.Load64(base))
		if i >= from {
			if !fn(i, h.LoadBytes(base+8, n)) {
				return
			}
		}
		off += 1 + (n+7)/8
	}
}

// PerOp places the per-operation restart point.
func (l *RespctLog) PerOp(th int) { l.rt.Thread(th).RP(rpLogOp) }

// ThreadExit marks worker th finished.
func (l *RespctLog) ThreadExit(th int) { l.rt.Thread(th).CheckpointAllow() }

// Close releases every runtime thread slot (idempotent CheckpointAllow per
// thread, consistent with ThreadExit) so a checkpoint can never stall on a
// closed log's former workers.
func (l *RespctLog) Close() {
	for i := 0; i < l.rt.Threads(); i++ {
		l.rt.Thread(i).CheckpointAllow()
	}
}

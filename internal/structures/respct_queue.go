package structures

import (
	"fmt"
	"sync"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
)

// RespctQueue is the paper's single-lock FIFO made persistent with ResPCT.
// The queue descriptor holds head and tail as InCLL cells; nodes hold an
// InCLL next pointer and a write-once raw value. As the paper's discussion
// (§6) notes, InCLL changes the data layout: elements live in arena blocks
// rather than a contiguous array, and are addressed through cells.
type RespctQueue struct {
	rt   *core.Runtime
	desc pmem.Addr
	head core.InCLL
	tail core.InCLL
	mu   sync.Mutex
}

const (
	qNodeCells = 1 // cell 0: next
	qNodeRaw   = 1 // word 0: value

	rpQueueOp uint64 = 0x51756575654f70 // "QueueOp"
)

// NewRespctQueue creates an empty persistent queue published under heap root
// slot rootIdx.
func NewRespctQueue(rt *core.Runtime, rootIdx int) (*RespctQueue, error) {
	sys := rt.Sys()
	desc := rt.Arena().AllocCells(sys, 2)
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating queue descriptor")
	}
	sys.Init(core.Cell(desc, 0), 0)
	sys.Init(core.Cell(desc, 1), 0)
	sys.Update(rt.RootInCLL(rootIdx), uint64(desc))
	return &RespctQueue{rt: rt, desc: desc, head: core.Cell(desc, 0), tail: core.Cell(desc, 1)}, nil
}

// OpenRespctQueue reattaches to a queue published under rootIdx after
// recovery.
func OpenRespctQueue(rt *core.Runtime, rootIdx int) (*RespctQueue, error) {
	desc := rt.ReadAddr(rt.RootInCLL(rootIdx))
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: no queue registered under root %d", rootIdx)
	}
	return &RespctQueue{rt: rt, desc: desc, head: core.Cell(desc, 0), tail: core.Cell(desc, 1)}, nil
}

// NewRespctQueueAt creates an empty queue descriptor with worker thread th
// and does NOT publish it to a root: the caller must link Desc() into a
// reachable, logged location in the same epoch (the server's named-structure
// directory does), or the allocation rolls back with the epoch and the queue
// never existed.
func NewRespctQueueAt(rt *core.Runtime, th int) (*RespctQueue, error) {
	t := rt.Thread(th)
	desc := rt.Arena().AllocCells(t, 2)
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating queue descriptor")
	}
	t.Init(core.Cell(desc, 0), 0)
	t.Init(core.Cell(desc, 1), 0)
	return &RespctQueue{rt: rt, desc: desc, head: core.Cell(desc, 0), tail: core.Cell(desc, 1)}, nil
}

// OpenRespctQueueAt reattaches to the queue descriptor at desc (recovered
// from a directory rather than a root slot).
func OpenRespctQueueAt(rt *core.Runtime, desc pmem.Addr) *RespctQueue {
	return &RespctQueue{rt: rt, desc: desc, head: core.Cell(desc, 0), tail: core.Cell(desc, 1)}
}

// Desc returns the queue's descriptor address, the handle a directory links
// to make an unpublished queue durable.
func (q *RespctQueue) Desc() pmem.Addr { return q.desc }

func (q *RespctQueue) nodeNext(n pmem.Addr) core.InCLL { return core.Cell(n, 0) }
func (q *RespctQueue) nodeVal(n pmem.Addr) pmem.Addr   { return core.RawBase(n, qNodeCells) }

// Enqueue implements Queue.
func (q *RespctQueue) Enqueue(th int, v uint64) {
	t := q.rt.Thread(th)
	n := q.rt.Arena().Alloc(t, qNodeCells, qNodeRaw)
	if n == pmem.NilAddr {
		panic("structures: RespctQueue out of persistent memory")
	}
	t.Init(q.nodeNext(n), 0)
	t.StoreTracked(q.nodeVal(n), v)
	q.mu.Lock()
	defer q.mu.Unlock()
	tail := q.rt.ReadAddr(q.tail)
	if tail == pmem.NilAddr {
		t.UpdateAddr(q.head, n)
		t.UpdateAddr(q.tail, n)
		return
	}
	t.UpdateAddr(q.nodeNext(tail), n)
	t.UpdateAddr(q.tail, n)
}

// Dequeue implements Queue.
func (q *RespctQueue) Dequeue(th int) (uint64, bool) {
	t := q.rt.Thread(th)
	q.mu.Lock()
	n := q.rt.ReadAddr(q.head)
	if n == pmem.NilAddr {
		q.mu.Unlock()
		return 0, false
	}
	v := q.rt.Heap().Load64(q.nodeVal(n))
	next := q.rt.ReadAddr(q.nodeNext(n))
	t.UpdateAddr(q.head, next)
	if next == pmem.NilAddr {
		t.UpdateAddr(q.tail, 0)
	}
	q.mu.Unlock()
	q.rt.Arena().Free(t, n)
	return v, true
}

// PerOp places the per-operation restart point.
func (q *RespctQueue) PerOp(th int) { q.rt.Thread(th).RP(rpQueueOp) }

// ThreadExit implements Queue.
func (q *RespctQueue) ThreadExit(th int) { q.rt.Thread(th).CheckpointAllow() }

// Close implements Queue: it releases every runtime thread slot (idempotent
// CheckpointAllow per thread, consistent with ThreadExit) so a checkpoint can
// never stall on a closed queue's former workers. The persistent state stays
// intact — OpenRespctQueue on the same root reattaches to it.
func (q *RespctQueue) Close() {
	for i := 0; i < q.rt.Threads(); i++ {
		q.rt.Thread(i).CheckpointAllow()
	}
}

// Len counts queued elements (test helper).
func (q *RespctQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := 0
	for n := q.rt.ReadAddr(q.head); n != pmem.NilAddr; n = q.rt.ReadAddr(q.nodeNext(n)) {
		total++
	}
	return total
}

// Snapshot returns the queued values front to back (crash-check helper).
// Callers must ensure quiescence.
func (q *RespctQueue) Snapshot() []uint64 {
	var out []uint64
	for n := q.rt.ReadAddr(q.head); n != pmem.NilAddr; n = q.rt.ReadAddr(q.nodeNext(n)) {
		out = append(out, q.rt.Heap().Load64(q.nodeVal(n)))
	}
	return out
}

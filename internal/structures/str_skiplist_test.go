package structures

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestStrSkipListOrdering drives random string-keyed churn and checks the
// index against a reference map, including range scans with both bounded and
// unbounded ends.
func TestStrSkipListOrdering(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	s, err := NewRespctStrSkipList(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]uint64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < quickCount(4000); i++ {
		k := fmt.Sprintf("user%06d", rng.Intn(500))
		switch rng.Intn(4) {
		case 0:
			wantAbsent := true
			if _, ok := ref[k]; ok {
				wantAbsent = false
			}
			if got := s.Insert(0, k, uint64(i)); got != wantAbsent {
				t.Fatalf("Insert(%q) absent=%v want %v", k, got, wantAbsent)
			}
			ref[k] = uint64(i)
		case 1:
			_, want := ref[k]
			if got := s.Remove(0, k); got != want {
				t.Fatalf("Remove(%q) = %v want %v", k, got, want)
			}
			delete(ref, k)
		default:
			want, wantOK := ref[k]
			if v, ok := s.Get(0, k); ok != wantOK || v != want {
				t.Fatalf("Get(%q) = %d,%v want %d,%v", k, v, ok, want, wantOK)
			}
		}
		s.PerOp(0)
	}
	var wantKeys []string
	for k := range ref {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	gotKeys, gotVals := s.Snapshot()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("snapshot has %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i, k := range wantKeys {
		if gotKeys[i] != k || gotVals[i] != ref[k] {
			t.Fatalf("snapshot[%d] = %q,%d want %q,%d", i, gotKeys[i], gotVals[i], k, ref[k])
		}
	}
	// Bounded scan: [from, to] inclusive, stopping early via fn.
	if len(wantKeys) >= 4 {
		from, to := wantKeys[1], wantKeys[len(wantKeys)-2]
		var got []string
		s.Scan(0, from, to, func(k string, v uint64) bool {
			got = append(got, k)
			return len(got) < 3
		})
		want := wantKeys[1:]
		if len(want) > 3 {
			want = want[:3]
		}
		if len(got) != len(want) {
			t.Fatalf("bounded scan returned %d keys, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] || got[i] > to {
				t.Fatalf("bounded scan[%d] = %q want %q (to=%q)", i, got[i], want[i], to)
			}
		}
	}
	s.ThreadExit(0)
}

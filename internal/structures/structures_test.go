package structures

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
)

// quickCount scales property-test iteration counts down under -short (the
// race-detector CI mode).
func quickCount(n int) int {
	if testing.Short() {
		return max(4, n/8)
	}
	return n
}

func newRespctFixture(t testing.TB, threads int, size int64) *core.Runtime {
	t.Helper()
	if size == 0 {
		size = 64 << 20
	}
	h := pmem.New(pmem.Config{Size: size})
	rt, err := core.NewRuntime(h, core.Config{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// checkpointAll runs a checkpoint with all workers idle.
func checkpointAll(rt *core.Runtime) {
	for i := 0; i < rt.Threads(); i++ {
		rt.Thread(i).CheckpointAllow()
	}
	rt.Checkpoint()
	for i := 0; i < rt.Threads(); i++ {
		rt.Thread(i).CheckpointPrevent(nil)
	}
}

// mapUnderTest drives any Map through a basic battery.
func mapUnderTest(t *testing.T, m Map) {
	t.Helper()
	if _, ok := m.Get(0, 1); ok {
		t.Fatal("empty map returned a value")
	}
	if !m.Insert(0, 1, 100) {
		t.Fatal("first insert reported existing")
	}
	if m.Insert(0, 1, 101) {
		t.Fatal("second insert reported new")
	}
	if v, ok := m.Get(0, 1); !ok || v != 101 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !m.Remove(0, 1) {
		t.Fatal("remove of present key failed")
	}
	if m.Remove(0, 1) {
		t.Fatal("remove of absent key succeeded")
	}
	if _, ok := m.Get(0, 1); ok {
		t.Fatal("removed key still present")
	}
	// Collision handling: few buckets, many keys.
	for k := uint64(1); k <= 200; k++ {
		m.Insert(0, k, k*2)
	}
	for k := uint64(1); k <= 200; k++ {
		if v, ok := m.Get(0, k); !ok || v != k*2 {
			t.Fatalf("key %d: %d,%v", k, v, ok)
		}
	}
	for k := uint64(1); k <= 200; k += 2 {
		if !m.Remove(0, k) {
			t.Fatalf("remove %d failed", k)
		}
	}
	for k := uint64(1); k <= 200; k++ {
		_, ok := m.Get(0, k)
		if want := k%2 == 0; ok != want {
			t.Fatalf("key %d present=%v want %v", k, ok, want)
		}
	}
}

func queueUnderTest(t *testing.T, q Queue) {
	t.Helper()
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("empty queue dequeued")
	}
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(0, i)
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := q.Dequeue(0)
		if !ok || v != i {
			t.Fatalf("dequeue %d: %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("drained queue dequeued")
	}
	// Interleaved.
	q.Enqueue(0, 1)
	q.Enqueue(0, 2)
	if v, _ := q.Dequeue(0); v != 1 {
		t.Fatal("FIFO violated")
	}
	q.Enqueue(0, 3)
	if v, _ := q.Dequeue(0); v != 2 {
		t.Fatal("FIFO violated")
	}
	if v, _ := q.Dequeue(0); v != 3 {
		t.Fatal("FIFO violated")
	}
}

func TestTransientMapBasics(t *testing.T) {
	h := pmem.New(pmem.DRAMConfig(32 << 20))
	mapUnderTest(t, NewTransientMap(h, 16))
}

func TestTransientMapOnNVMM(t *testing.T) {
	h := pmem.New(pmem.NVMMConfig(32 << 20))
	mapUnderTest(t, NewTransientMap(h, 16))
}

func TestTransientQueueBasics(t *testing.T) {
	h := pmem.New(pmem.DRAMConfig(32 << 20))
	queueUnderTest(t, NewTransientQueue(h))
}

func TestTransientQueueRecyclesNodes(t *testing.T) {
	h := pmem.New(pmem.DRAMConfig(1 << 20))
	q := NewTransientQueue(h)
	// Far more operations than the heap could hold without recycling.
	for round := 0; round < 100000; round++ {
		q.Enqueue(0, uint64(round))
		if _, ok := q.Dequeue(0); !ok {
			t.Fatal("dequeue failed")
		}
	}
}

func TestRespctMapBasics(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	m, err := NewRespctMap(rt, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	mapUnderTest(t, m)
}

func TestRespctQueueBasics(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	q, err := NewRespctQueue(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	queueUnderTest(t, q)
}

func TestRespctMapCrashRecovery(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	m, err := NewRespctMap(rt, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		m.Insert(0, k, k+1000)
	}
	checkpointAll(rt) // durable: 100 keys
	want := m.Snapshot()

	// Doomed epoch: overwrite, delete, insert.
	for k := uint64(1); k <= 50; k++ {
		m.Insert(0, k, 9999)
	}
	for k := uint64(51); k <= 70; k++ {
		m.Remove(0, k)
	}
	for k := uint64(200); k <= 250; k++ {
		m.Insert(0, k, k)
	}
	rt.Heap().EvictDirtyFraction(0.5, 42)
	rt.Heap().Crash()

	rt2, _, err := core.Recover(rt.Heap(), core.Config{Threads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := OpenRespctMap(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
	// The recovered map must remain fully operational.
	m2.Insert(0, 777, 778)
	if v, ok := m2.Get(0, 777); !ok || v != 778 {
		t.Fatal("recovered map not operational")
	}
}

func TestRespctQueueCrashRecovery(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	q, err := NewRespctQueue(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		q.Enqueue(0, i)
	}
	checkpointAll(rt)
	want := q.Snapshot()

	// Doomed epoch.
	for i := 0; i < 20; i++ {
		q.Dequeue(0)
	}
	for i := uint64(100); i < 120; i++ {
		q.Enqueue(0, i)
	}
	rt.Heap().EvictDirtyFraction(0.6, 9)
	rt.Heap().Crash()

	rt2, _, err := core.Recover(rt.Heap(), core.Config{Threads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := OpenRespctQueue(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := q2.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("recovered %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Still FIFO after recovery.
	q2.Enqueue(0, 12345)
	v, ok := q2.Dequeue(0)
	if !ok || v != want[0] {
		t.Fatalf("post-recovery dequeue = %d,%v, want %d", v, ok, want[0])
	}
}

func TestRespctMapConcurrentWithCheckpoints(t *testing.T) {
	const threads = 4
	rt := newRespctFixture(t, threads, 128<<20)
	m, err := NewRespctMap(rt, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	stopCk := make(chan struct{})
	var ckWg sync.WaitGroup
	ckWg.Add(1)
	go func() {
		defer ckWg.Done()
		for {
			select {
			case <-stopCk:
				return
			default:
				rt.Checkpoint()
			}
		}
	}()

	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(th)))
			// Disjoint key ranges per thread so we can verify counts.
			base := uint64(th) * 1000000
			for op := 0; op < 500; op++ {
				k := base + uint64(rng.Intn(500)) + 1
				switch rng.Intn(3) {
				case 0:
					m.Insert(th, k, k)
				case 1:
					m.Remove(th, k)
				case 2:
					if v, ok := m.Get(th, k); ok && v != k {
						t.Errorf("key %d has foreign value %d", k, v)
					}
				}
				m.PerOp(th)
			}
			m.ThreadExit(th)
		}(th)
	}
	wg.Wait()
	close(stopCk)
	ckWg.Wait()
	if rt.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoints ran during the workload")
	}
}

// Property: a RespctMap behaves like a native Go map under any operation
// sequence, including across a crash at a random point (recovered state must
// equal the model at the last checkpoint).
func TestQuickRespctMapMatchesModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  uint64
	}
	f := func(ops []op, crashAt uint16, seed int64) bool {
		rt := newRespctFixture(t, 1, 0)
		m, err := NewRespctMap(rt, 0, 32)
		if err != nil {
			t.Fatal(err)
		}
		// Make the creation itself durable; without this a crash before the
		// first checkpoint correctly loses the whole map.
		checkpointAll(rt)
		model := map[uint64]uint64{}
		certified := map[uint64]uint64{}
		crashPoint := -1
		if len(ops) > 0 {
			crashPoint = int(crashAt) % len(ops)
		}
		for i, o := range ops {
			k := uint64(o.Key) + 1
			switch o.Kind % 4 {
			case 0:
				m.Insert(0, k, o.Val)
				model[k] = o.Val
			case 1:
				m.Remove(0, k)
				delete(model, k)
			case 2:
				v, ok := m.Get(0, k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 3:
				checkpointAll(rt)
				certified = map[uint64]uint64{}
				for kk, vv := range model {
					certified[kk] = vv
				}
			}
			if i == crashPoint {
				rt.Heap().EvictDirtyFraction(0.5, seed)
				rt.Heap().Crash()
				rt2, _, err := core.Recover(rt.Heap(), core.Config{Threads: 1}, 1)
				if err != nil {
					t.Fatal(err)
				}
				m2, err := OpenRespctMap(rt2, 0)
				if err != nil {
					t.Fatal(err)
				}
				got := m2.Snapshot()
				if len(got) != len(certified) {
					return false
				}
				for kk, vv := range certified {
					if got[kk] != vv {
						return false
					}
				}
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(60)}); err != nil {
		t.Fatal(err)
	}
}

// Property: RespctQueue matches a model slice across random ops and a crash.
func TestQuickRespctQueueMatchesModel(t *testing.T) {
	f := func(ops []uint8, crashAt uint16, seed int64) bool {
		rt := newRespctFixture(t, 1, 0)
		q, err := NewRespctQueue(rt, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkpointAll(rt)
		var model, certified []uint64
		next := uint64(1)
		crashPoint := -1
		if len(ops) > 0 {
			crashPoint = int(crashAt) % len(ops)
		}
		for i, o := range ops {
			switch o % 3 {
			case 0:
				q.Enqueue(0, next)
				model = append(model, next)
				next++
			case 1:
				v, ok := q.Dequeue(0)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2:
				checkpointAll(rt)
				certified = append([]uint64(nil), model...)
			}
			if i == crashPoint {
				rt.Heap().EvictDirtyFraction(0.5, seed)
				rt.Heap().Crash()
				rt2, _, err := core.Recover(rt.Heap(), core.Config{Threads: 1}, 1)
				if err != nil {
					t.Fatal(err)
				}
				q2, err := OpenRespctQueue(rt2, 0)
				if err != nil {
					t.Fatal(err)
				}
				got := q2.Snapshot()
				if len(got) != len(certified) {
					return false
				}
				for j := range certified {
					if got[j] != certified[j] {
						return false
					}
				}
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(60)}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWithoutCreateFails(t *testing.T) {
	rt := newRespctFixture(t, 1, 0)
	if _, err := OpenRespctMap(rt, 7); err == nil {
		t.Fatal("OpenRespctMap on empty root succeeded")
	}
	if _, err := OpenRespctQueue(rt, 7); err == nil {
		t.Fatal("OpenRespctQueue on empty root succeeded")
	}
}

func TestRespctMapManySegments(t *testing.T) {
	rt := newRespctFixture(t, 1, 128<<20)
	// More buckets than one segment holds.
	m, err := NewRespctMap(rt, 0, segBuckets+100)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 1000; k++ {
		m.Insert(0, k, k)
	}
	for k := uint64(1); k <= 1000; k++ {
		if v, ok := m.Get(0, k); !ok || v != k {
			t.Fatalf("key %d: %d,%v", k, v, ok)
		}
	}
}

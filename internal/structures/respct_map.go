package structures

import (
	"fmt"
	"sync"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
)

// RespctMap is the hash map of the paper's micro-benchmarks made persistent
// with ResPCT. Like the Synch-framework map the paper ports, each bucket
// holds its entries in-line — two key/value slot pairs — and only spills to
// a chained overflow node when a third key lands in the bucket. In-line
// slots keep allocation off the hot path and make repeated updates hit the
// same cache lines, which is what lets InCLL-based tracking deduplicate so
// well (the paper's ~700k flushed addresses per checkpoint, §5.2).
//
// Every mutable word is an InCLL cell: slot keys and values carry
// write-after-read dependencies across restart points (a slot is read before
// it is claimed or cleared), so §3.3.2 rule (ii) applies. Bucket locks are
// ordinary volatile mutexes: checkpoints only happen at restart points,
// which are never inside critical sections, so lock state needs no recovery
// (§3.3).
//
// Restart point placement follows the paper: one RP after each completed
// operation (PerOp).
type RespctMap struct {
	rt      *core.Runtime
	desc    pmem.Addr // descriptor block: [nBucket, nSeg, seg...]
	nBucket uint64
	segs    []pmem.Addr
	locks   []sync.Mutex
}

const (
	// bucketCells is the per-bucket in-line layout:
	// cell 0: key0, 1: val0, 2: key1, 3: val1, 4: overflow chain head,
	// cell 5: padding to a whole number of cache lines.
	bucketCells = 6

	// segBuckets buckets per segment: the largest count whose block
	// (header + bucket cells) still fits the 2 MiB size class.
	segBuckets = 10917 // 10917*6 cells * 32 B + 64 B header <= 2 MiB

	mapNodeCells = 2 // overflow node: cell 0 next, cell 1 value
	mapNodeRaw   = 1 // word 0: key (write-once)

	rpMapOp uint64 = 0x4d61704f70 // "MapOp": the per-operation restart point
)

// NewRespctMap creates a persistent map with nBucket buckets and publishes
// it under heap root slot rootIdx. Call it once on a fresh runtime;
// reattach after recovery with OpenRespctMap.
func NewRespctMap(rt *core.Runtime, rootIdx, nBucket int) (*RespctMap, error) {
	sys := rt.Sys()
	nSeg := (nBucket + segBuckets - 1) / segBuckets
	desc := rt.Arena().AllocRaw(sys, 2+nSeg)
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: heap exhausted allocating map descriptor")
	}
	sys.StoreTracked(desc, uint64(nBucket))
	sys.StoreTracked(desc+8, uint64(nSeg))
	segs := make([]pmem.Addr, nSeg)
	for s := 0; s < nSeg; s++ {
		seg := rt.Arena().AllocCells(sys, segBuckets*bucketCells)
		if seg == pmem.NilAddr {
			return nil, fmt.Errorf("structures: heap exhausted allocating bucket segment %d/%d", s, nSeg)
		}
		for c := 0; c < segBuckets*bucketCells; c++ {
			sys.Init(core.Cell(seg, c), 0)
		}
		sys.StoreTracked(desc+pmem.Addr(16+s*8), uint64(seg))
		segs[s] = seg
	}
	sys.Update(rt.RootInCLL(rootIdx), uint64(desc))
	return &RespctMap{
		rt:      rt,
		desc:    desc,
		nBucket: uint64(nBucket),
		segs:    segs,
		locks:   make([]sync.Mutex, nBucket),
	}, nil
}

// OpenRespctMap reattaches to a map published under rootIdx, typically after
// Recover.
func OpenRespctMap(rt *core.Runtime, rootIdx int) (*RespctMap, error) {
	desc := rt.ReadAddr(rt.RootInCLL(rootIdx))
	if desc == pmem.NilAddr {
		return nil, fmt.Errorf("structures: no map registered under root %d", rootIdx)
	}
	h := rt.Heap()
	nBucket := h.Load64(desc)
	nSeg := h.Load64(desc + 8)
	segs := make([]pmem.Addr, nSeg)
	for s := range segs {
		segs[s] = pmem.Addr(h.Load64(desc + pmem.Addr(16+s*8)))
	}
	return &RespctMap{
		rt:      rt,
		desc:    desc,
		nBucket: nBucket,
		segs:    segs,
		locks:   make([]sync.Mutex, nBucket),
	}, nil
}

// bucket returns the address of bucket b's first cell.
func (m *RespctMap) bucket(b uint64) pmem.Addr {
	return m.segs[b/segBuckets] + pmem.Addr((b%segBuckets)*bucketCells*core.CellSize)
}

func (m *RespctMap) slotKey(bkt pmem.Addr, s int) core.InCLL {
	return core.Cell(bkt, s*2)
}

func (m *RespctMap) slotVal(bkt pmem.Addr, s int) core.InCLL {
	return core.Cell(bkt, s*2+1)
}

func (m *RespctMap) overflow(bkt pmem.Addr) core.InCLL { return core.Cell(bkt, 4) }

func (m *RespctMap) nodeNext(n pmem.Addr) core.InCLL  { return core.Cell(n, 0) }
func (m *RespctMap) nodeValue(n pmem.Addr) core.InCLL { return core.Cell(n, 1) }
func (m *RespctMap) nodeKey(n pmem.Addr) pmem.Addr    { return core.RawBase(n, mapNodeCells) }

// insert is the shared body of Insert and InsertIfAbsent.
func (m *RespctMap) insert(th int, key, value uint64, overwrite bool) (uint64, bool) {
	t := m.rt.Thread(th)
	h := m.rt.Heap()
	b := hashMix(key) % m.nBucket
	bkt := m.bucket(b)
	mu := &m.locks[b]
	mu.Lock()
	defer mu.Unlock()

	// Look for the key in the in-line slots and the overflow chain.
	freeSlot := -1
	for s := 0; s < 2; s++ {
		k := m.rt.Read(m.slotKey(bkt, s))
		if k == key {
			if overwrite {
				t.Update(m.slotVal(bkt, s), value)
				return value, false
			}
			return m.rt.Read(m.slotVal(bkt, s)), false
		}
		if k == 0 && freeSlot < 0 {
			freeSlot = s
		}
	}
	for n := m.rt.ReadAddr(m.overflow(bkt)); n != pmem.NilAddr; n = m.rt.ReadAddr(m.nodeNext(n)) {
		if h.Load64(m.nodeKey(n)) == key {
			if overwrite {
				t.Update(m.nodeValue(n), value)
				return value, false
			}
			return m.rt.Read(m.nodeValue(n)), false
		}
	}

	// Absent: claim a free in-line slot, or spill to an overflow node.
	if freeSlot >= 0 {
		t.Update(m.slotVal(bkt, freeSlot), value)
		t.Update(m.slotKey(bkt, freeSlot), key)
		return value, true
	}
	n := m.rt.Arena().Alloc(t, mapNodeCells, mapNodeRaw)
	if n == pmem.NilAddr {
		panic("structures: RespctMap out of persistent memory")
	}
	// The node is fully initialised before it is linked; the link (an
	// InCLL update of the overflow head) is what makes it reachable, and a
	// crash rolls that link back.
	t.Init(m.nodeNext(n), m.rt.Read(m.overflow(bkt)))
	t.Init(m.nodeValue(n), value)
	t.StoreTracked(m.nodeKey(n), key)
	t.UpdateAddr(m.overflow(bkt), n)
	return value, true
}

// Insert implements Map.
func (m *RespctMap) Insert(th int, key, value uint64) bool {
	_, inserted := m.insert(th, key, value, true)
	return inserted
}

// InsertIfAbsent atomically inserts key->value if key is absent and reports
// (current value, inserted). The dedup pipeline uses it to pick a canonical
// owner per content hash.
func (m *RespctMap) InsertIfAbsent(th int, key, value uint64) (uint64, bool) {
	return m.insert(th, key, value, false)
}

// Remove implements Map.
func (m *RespctMap) Remove(th int, key uint64) bool {
	t := m.rt.Thread(th)
	h := m.rt.Heap()
	b := hashMix(key) % m.nBucket
	bkt := m.bucket(b)
	mu := &m.locks[b]
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < 2; s++ {
		if m.rt.Read(m.slotKey(bkt, s)) == key {
			t.Update(m.slotKey(bkt, s), 0)
			return true
		}
	}
	prev := m.overflow(bkt)
	for n := m.rt.ReadAddr(prev); n != pmem.NilAddr; n = m.rt.ReadAddr(prev) {
		if h.Load64(m.nodeKey(n)) == key {
			t.Update(prev, m.rt.Read(m.nodeNext(n)))
			m.rt.Arena().Free(t, n)
			return true
		}
		prev = m.nodeNext(n)
	}
	return false
}

// Get implements Map.
func (m *RespctMap) Get(th int, key uint64) (uint64, bool) {
	h := m.rt.Heap()
	b := hashMix(key) % m.nBucket
	bkt := m.bucket(b)
	mu := &m.locks[b]
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < 2; s++ {
		if m.rt.Read(m.slotKey(bkt, s)) == key {
			return m.rt.Read(m.slotVal(bkt, s)), true
		}
	}
	for n := m.rt.ReadAddr(m.overflow(bkt)); n != pmem.NilAddr; n = m.rt.ReadAddr(m.nodeNext(n)) {
		if h.Load64(m.nodeKey(n)) == key {
			return m.rt.Read(m.nodeValue(n)), true
		}
	}
	return 0, false
}

// PerOp places the per-operation restart point.
func (m *RespctMap) PerOp(th int) { m.rt.Thread(th).RP(rpMapOp) }

// ThreadExit implements Map.
func (m *RespctMap) ThreadExit(th int) { m.rt.Thread(th).CheckpointAllow() }

// Close implements Map. Checkpointer lifecycle belongs to the caller.
func (m *RespctMap) Close() {}

// Len counts entries (test helper).
func (m *RespctMap) Len() int {
	total := 0
	for k := range m.Snapshot() {
		_ = k
		total++
	}
	return total
}

// Snapshot returns the logical contents (test/crash-check helper). Callers
// must ensure quiescence.
func (m *RespctMap) Snapshot() map[uint64]uint64 {
	h := m.rt.Heap()
	out := make(map[uint64]uint64)
	for b := uint64(0); b < m.nBucket; b++ {
		bkt := m.bucket(b)
		for s := 0; s < 2; s++ {
			if k := m.rt.Read(m.slotKey(bkt, s)); k != 0 {
				out[k] = m.rt.Read(m.slotVal(bkt, s))
			}
		}
		for n := m.rt.ReadAddr(m.overflow(bkt)); n != pmem.NilAddr; n = m.rt.ReadAddr(m.nodeNext(n)) {
			out[h.Load64(m.nodeKey(n))] = m.rt.Read(m.nodeValue(n))
		}
	}
	return out
}

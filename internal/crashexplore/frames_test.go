package crashexplore

import (
	"testing"
)

// TestKVFramesFallsBackToPreviousChain pins the kv-frames premise without
// any injected heap crash: the final snapshot's write budget fires, its
// manifest update never lands, and recovery from the frame store therefore
// reproduces the state certified by the PREVIOUS snapshot — strictly older
// than the heap's own final durable epoch.
func TestKVFramesFallsBackToPreviousChain(t *testing.T) {
	w, err := Lookup("kv-frames")
	if err != nil {
		t.Fatal(err)
	}
	_, run, err := runOnce(w, nil, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	fr := run.(*kvFramesRun)
	if !fr.crash.Crashed() {
		t.Fatal("final snapshot's write budget never fired")
	}
	recs, err := run.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d recovered heaps", len(recs))
	}
	finalDurable := fr.rt.DurableEpoch()
	// The chain tip is the snapshot before the aborted one, so the restored
	// image's failed epoch must trail the heap's own post-run epoch by
	// exactly one checkpoint.
	if recs[0].FailedEpoch != finalDurable-1 {
		t.Fatalf("restored failed epoch %d, heap's final durable epoch %d — fallback should trail by one checkpoint",
			recs[0].FailedEpoch, finalDurable)
	}
	want := fr.certified[recs[0].FailedEpoch-1]
	if want == nil {
		t.Fatalf("no certified state for epoch %d", recs[0].FailedEpoch-1)
	}
	if d := diffStates(want, recs[0].State); d != "" {
		t.Fatalf("fallback state diverges from certified C%d: %s", recs[0].FailedEpoch-1, d)
	}
}

package crashexplore

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/kv"
	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/wire"
)

// kvStructWorkload drives one multi-model command family of the structures
// store (kv.StoreOptions.Structures) with a deterministic op stream and
// inline checkpoints: ordered-index churn behind SCAN, the TTL lifecycle
// with the boundary sweep, queue push/pop, log appends, or atomic MULTI
// frames through kv.ApplyFrame. The logical state certified at every cut is
// the store's full SnapshotLogical — KV entries with their persistent
// deadlines plus the ordered-index, queue and log pseudo-keys — so the
// checker proves every family's mutations are crash-atomic, not just the
// flat map.
//
// Time is a workload-owned counter (advanced once per batch), so TTL
// deadlines, the sweep and therefore the trace are fully deterministic.
type kvStructWorkload struct {
	name        string
	family      string // "scan", "ttl", "queue", "log" or "multi"
	batches     int
	opsPerBatch int
	keySpace    int
}

func (w *kvStructWorkload) Name() string { return w.name }

func (w *kvStructWorkload) Setup(rec *pmem.Recorder, sanitize bool) (Run, error) {
	h := explorerHeap()
	rt, err := core.NewRuntime(h, explorerCoreConfig(false, sanitize))
	if err != nil {
		return nil, err
	}
	r := &kvStructRun{w: w, h: h, rt: rt, clock: 1000, certified: Certified{}}
	st, err := kv.NewRespctStoreOpts(rt, 0, kv.StoreOptions{
		Buckets: 128, Structures: true, Clock: func() uint64 { return r.clock }})
	if err != nil {
		return nil, err
	}
	r.st = st
	rt.SetQuiescedHook(func(ending uint64) {
		r.certified[ending] = State(st.SnapshotLogical())
	})
	initialCheckpoint(rt, false)
	rec.Attach(h)
	return r, nil
}

type kvStructRun struct {
	w         *kvStructWorkload
	h         *pmem.Heap
	rt        *core.Runtime
	st        *kv.RespctStore
	clock     uint64 // workload-owned ms clock, read by the store
	certified Certified
}

func (r *kvStructRun) key(rng *rand.Rand) string {
	return fmt.Sprintf("key-%02d", rng.Intn(r.w.keySpace))
}

// batchOp issues one deterministic operation of the run's family.
func (r *kvStructRun) batchOp(rng *rand.Rand, b, i int) error {
	st := r.st
	switch r.w.family {
	case "scan":
		// Ordered-index churn: the skiplist repoints on overwrite, drops on
		// delete, and the read-only scan walks it mid-stream.
		switch key := r.key(rng); rng.Intn(5) {
		case 0:
			st.Delete(0, key)
		case 1:
			st.Scan(0, "key-00", "key-99", 8)
		default:
			st.Set(0, key, []byte(fmt.Sprintf("v%d-%d", b, i)))
		}
	case "ttl":
		switch key := r.key(rng); rng.Intn(4) {
		case 0:
			st.Expire(0, key, r.clock+uint64(rng.Intn(3)))
		case 1:
			st.Get(0, key)
		default:
			st.Set(0, key, []byte(fmt.Sprintf("v%d-%d", b, i)))
		}
	case "queue":
		name := []string{"qa", "qb"}[rng.Intn(2)]
		if rng.Intn(3) == 0 {
			if _, _, err := st.QPop(0, name); err != nil {
				return err
			}
		} else if err := st.QPush(0, name, []byte(fmt.Sprintf("j%d-%d", b, i))); err != nil {
			return err
		}
	case "log":
		name := []string{"la", "lb"}[rng.Intn(2)]
		if rng.Intn(4) == 0 {
			if _, err := st.LRange(0, name, uint64(rng.Intn(4)), 4); err != nil {
				return err
			}
		} else if _, err := st.LAppend(0, name, []byte(fmt.Sprintf("r%d-%d", b, i))); err != nil {
			return err
		}
	default:
		return fmt.Errorf("crashexplore: unknown struct family %q", r.w.family)
	}
	st.PerOp(0)
	return nil
}

// multiFrame builds and applies one atomic MULTI frame, exactly as a server
// worker runs a FlagAtomic batch: validated, then executed whole inside one
// Batcher window with per-op restart points.
func (r *kvStructRun) multiFrame(rng *rand.Rand, round int) error {
	var b wire.ReqBuilder
	b.SetAtomic()
	for i := 0; i < r.w.opsPerBatch; i++ {
		key := r.key(rng)
		switch rng.Intn(5) {
		case 0:
			b.Delete(key)
		case 1:
			b.Expire(key, r.clock+uint64(rng.Intn(3)))
		default:
			b.Set(key, []byte(fmt.Sprintf("v%d-%d", round, i)))
		}
	}
	var f wire.ReqFrame
	if err := f.Decode(bytes.NewReader(b.Bytes())); err != nil {
		return err
	}
	var resp wire.RespBuilder
	return kv.ApplyFrame(r.st, 0, &f, &resp)
}

func (r *kvStructRun) Execute() error {
	w := r.w
	t := r.rt.Thread(0)
	rng := rand.New(rand.NewSource(31))
	for b := 0; b < w.batches; b++ {
		if w.family == "multi" {
			if err := r.multiFrame(rng, b); err != nil {
				return err
			}
		} else {
			for i := 0; i < w.opsPerBatch; i++ {
				if err := r.batchOp(rng, b, i); err != nil {
					return err
				}
			}
		}
		r.clock++
		if w.family == "ttl" {
			// The boundary sweep runs inside the epoch the checkpoint is
			// about to cut, mirroring shard.Pool.checkpointShard.
			r.st.SweepExpired(0, r.clock)
			r.st.PerOp(0)
		}
		t.CheckpointAllow()
		r.rt.Checkpoint()
		t.CheckpointPrevent(nil)
	}
	return nil
}

func (r *kvStructRun) Certified(int) Certified { return r.certified }

func (r *kvStructRun) SanFindings() []string { return r.rt.SanFindings() }

func (r *kvStructRun) Recover() ([]Recovered, error) {
	rt2, rep, err := core.Recover(r.h, explorerCoreConfig(false, false), 1)
	if err != nil {
		return nil, err
	}
	st2, err := kv.OpenRespctStoreOpts(rt2, 0, kv.StoreOptions{
		Structures: true, Clock: func() uint64 { return r.clock }})
	if err != nil {
		return nil, err
	}
	return []Recovered{{FailedEpoch: rep.FailedEpoch, State: State(st2.SnapshotLogical())}}, nil
}

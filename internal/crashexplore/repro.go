package crashexplore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/respct/respct/internal/pmem"
)

// reproVersion is bumped whenever the repro file format or the meaning of
// trace sequence numbers changes incompatibly.
const reproVersion = 1

// Repro is a self-contained, replayable description of a failing crash
// point: the workload name fully determines the program and its seeds, the
// actions reproduce the perturbed persistence schedule, and CrashSeq pins
// the crash. PrefixHash fingerprints the reference trace up to the crash so
// a replay can prove it reproduced the same schedule byte for byte.
type Repro struct {
	Version  int           `json:"version"`
	Workload string        `json:"workload"`
	CrashSeq uint64        `json:"crash_seq"`
	Actions  []pmem.Action `json:"actions,omitempty"`

	// PrefixHash is pmem.TraceHash over reference events [0, CrashSeq].
	PrefixHash uint64 `json:"prefix_hash"`

	// Failure is the human-readable divergence the explorer observed.
	Failure string `json:"failure"`
}

// writeRepro minimizes and persists a repro for f: actions are trimmed to
// those that can fire at or before the crash point (later ones cannot
// affect the persistent image the crash freezes).
func writeRepro(dir, workload string, actions []pmem.Action, events []pmem.TraceEvent, f Failure) (string, error) {
	r := &Repro{
		Version:    reproVersion,
		Workload:   workload,
		CrashSeq:   f.Seq,
		PrefixHash: pmem.TraceHash(events[:f.Seq+1]),
		Failure:    f.Err,
	}
	for _, a := range actions {
		if a.AfterSeq <= f.Seq {
			r.Actions = append(r.Actions, a)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seq%d.json", workload, f.Seq))
	if err := r.Save(path); err != nil {
		return "", err
	}
	return path, nil
}

// Save writes r as indented JSON.
func (r *Repro) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a repro file written by Save (or by the explorer).
func Load(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := new(Repro)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("crashexplore: parse repro %s: %w", path, err)
	}
	if r.Version != reproVersion {
		return nil, fmt.Errorf("crashexplore: repro %s has version %d, this build understands %d",
			path, r.Version, reproVersion)
	}
	if r.Workload == "" {
		return nil, fmt.Errorf("crashexplore: repro %s names no workload", path)
	}
	return r, nil
}

// ReplayResult is what replaying a repro observed.
type ReplayResult struct {
	// Divergence is empty when recovery satisfied the durability contract
	// (the bug did not reproduce), otherwise the checker's description.
	Divergence string

	// FailedEpochs are the per-heap failed epochs recovery reported.
	FailedEpochs []uint64
}

// Replay re-executes a repro: run the named workload with the recorded
// schedule, crash at CrashSeq, recover, and re-check the durability
// contract. It errors if the trace prefix no longer matches PrefixHash —
// the workload or runtime changed since the repro was written, so the
// schedule is not the one that failed.
func Replay(r *Repro) (*ReplayResult, error) {
	w, err := Lookup(r.Workload)
	if err != nil {
		return nil, err
	}
	rec, run, err := runOnce(w, r.Actions, int64(r.CrashSeq), false)
	if err != nil {
		return nil, fmt.Errorf("crashexplore: replay: %w", err)
	}
	ev := rec.Events()
	if uint64(len(ev)) <= r.CrashSeq {
		return nil, fmt.Errorf("crashexplore: replay produced %d events, repro crashes after %d — stale repro?",
			len(ev), r.CrashSeq)
	}
	if got := pmem.TraceHash(ev[:r.CrashSeq+1]); got != r.PrefixHash {
		return nil, fmt.Errorf("crashexplore: replay trace prefix hash %#x != repro %#x — workload changed since the repro was recorded",
			got, r.PrefixHash)
	}
	res := new(ReplayResult)
	epochs, f := checkCrashPoint(run, r.CrashSeq)
	res.FailedEpochs = epochs
	if f != nil {
		res.Divergence = f.Err
	}
	return res, nil
}

package crashexplore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/respct/respct/internal/pmem"
)

// The map-tiny workload is the enumeration fixture: small enough to explore
// exhaustively in well under a second, and its trace geometry is pinned
// exactly. If a deliberate change to the runtime's flush schedule, the map
// layout, or the trace instrumentation moves these numbers, re-derive them
// with `go test -run TestMapTinyExhaustiveEnumeration -v` and update —
// an *unexplained* shift means the persistence schedule changed by
// accident, which is exactly what this test exists to catch.
const (
	mapTinyEvents         = 22
	mapTinyOrderingPoints = 12
)

func TestMapTinyExhaustiveEnumeration(t *testing.T) {
	w, err := Lookup("map-tiny")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != mapTinyEvents {
		t.Errorf("reference trace has %d events, want %d", rep.Events, mapTinyEvents)
	}
	if rep.OrderingPoints != mapTinyOrderingPoints {
		t.Errorf("enumerated %d ordering points, want %d", rep.OrderingPoints, mapTinyOrderingPoints)
	}
	if rep.Explored != rep.OrderingPoints {
		t.Errorf("exhaustive run explored %d of %d points", rep.Explored, rep.OrderingPoints)
	}
	if rep.Sampled || rep.Skipped != 0 {
		t.Errorf("exhaustive run reported sampling (sampled=%v skipped=%d)", rep.Sampled, rep.Skipped)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("durability violations on map-tiny: %+v", rep.Failures)
	}
}

// TestDurabilityAcrossCrashPoints is the BDL acceptance sweep: sync, async
// and 2-shard staggered configurations must recover to a completed
// checkpoint from every explored crash point.
func TestDurabilityAcrossCrashPoints(t *testing.T) {
	cases := []struct {
		workload string
		budget   int // 0 = exhaustive
	}{
		{"map-sync", 0},
		{"map-async", 0},
		{"kv-sync", 30},
		{"kv-async", 30},
		{"shard-2-staggered", 30},
		{"kv-frames", 30},
		{"kv-batch-sync", 30},
		{"kv-batch-async", 30},
		{"kv-scan", 30},
		{"kv-ttl", 30},
		{"kv-queue", 30},
		{"kv-log", 30},
		{"kv-multi", 30},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.workload, func(t *testing.T) {
			t.Parallel()
			budget := tc.budget
			if testing.Short() {
				// Each point is a full workload re-execution; under the race
				// detector on small CI hosts the exhaustive sweeps blow the
				// test deadline. -short keeps a sampled smoke sweep here —
				// full coverage lives in the non-short run and in the CI
				// crashexplore job (see EXPERIMENTS.md for the counts).
				budget = 6
			}
			w, err := Lookup(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Explore(w, Options{Budget: budget})
			if err != nil {
				t.Fatal(err)
			}
			if rep.OrderingPoints == 0 {
				t.Fatal("workload produced no ordering points")
			}
			for _, f := range rep.Failures {
				t.Errorf("crash point %d: %s", f.Seq, f.Err)
			}
		})
	}
}

// The async workloads only earn their keep if the drain-window collision
// machinery actually fires inside the traced region — otherwise they are
// sync workloads with extra steps.
func TestAsyncTraceCoversCollisions(t *testing.T) {
	w, err := Lookup("map-async")
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := runOnce(w, nil, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	tags := map[string]int{}
	for _, e := range rec.Events() {
		if e.Kind == pmem.EvAnnotation {
			tags[e.Tag]++
		}
	}
	for _, want := range []string{"epoch-commit", "collision-arm", "collision-append"} {
		if tags[want] == 0 {
			t.Errorf("reference trace has no %q annotation (tags: %v)", want, tags)
		}
	}
}

func TestTraceIsDeterministic(t *testing.T) {
	w, err := Lookup("map-async")
	if err != nil {
		t.Fatal(err)
	}
	rec1, _, err := runOnce(w, nil, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	rec2, _, err := runOnce(w, nil, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := rec1.Events(), rec2.Events()
	if len(e1) != len(e2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(e1), len(e2))
	}
	if pmem.TraceHash(e1) != pmem.TraceHash(e2) {
		t.Fatal("two reference runs produced different traces")
	}
}

// Scripted evictions perturb the persistence schedule (lines reach the
// image earlier than any flush asked) but must never break durability —
// eviction is always legal under PCSO.
func TestScriptedEvictionsStillDurable(t *testing.T) {
	w, err := Lookup("map-tiny")
	if err != nil {
		t.Fatal(err)
	}
	// Actions fire at trace positions, so derive them from a reference
	// trace: an evict-all right after every changed write-back hits each
	// flush window while later lines of the same batch are still dirty.
	rec, _, err := runOnce(w, nil, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	var actions []pmem.Action
	for _, e := range rec.Events() {
		if e.Kind == pmem.EvWriteBack && e.Changed {
			actions = append(actions, pmem.Action{AfterSeq: e.Seq, Heap: 0, Line: -1})
		}
	}
	rep, err := Explore(w, Options{Actions: actions})
	if err != nil {
		t.Fatal(err)
	}
	// Evictions don't add ordering points — a line's content reaches the
	// image "changed" exactly once whoever writes it back — but they do
	// lengthen the trace: the eviction events themselves, plus the later
	// flushes of those lines degrading to changed=false write-backs.
	if rep.Events <= mapTinyEvents {
		t.Errorf("evictions should lengthen the trace: got %d events, unperturbed trace has %d",
			rep.Events, mapTinyEvents)
	}
	for _, f := range rep.Failures {
		t.Errorf("crash point %d: %s", f.Seq, f.Err)
	}
}

// The seeded known-bad schedule: the epoch commit is made durable before
// the payload flush (the persistorder analyzer's directive-suppressed test
// hook). The explorer must catch it and emit a replayable minimized repro.
func TestCommitBeforeFlushFaultCaught(t *testing.T) {
	w, err := Lookup("map-sync-badcommit")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep, err := Explore(w, Options{ReproDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("commit-before-flush fault was not detected")
	}
	first := rep.Failures[0]
	for _, f := range rep.Failures[1:] {
		if f.Seq < first.Seq {
			t.Errorf("failures not in ascending seq order: %d before %d", first.Seq, f.Seq)
		}
	}
	if !strings.Contains(first.Err, "diverges") {
		t.Errorf("failure should describe a state divergence, got: %s", first.Err)
	}
	if rep.ReproPath == "" {
		t.Fatal("no repro written despite failures and ReproDir set")
	}
	if _, err := os.Stat(rep.ReproPath); err != nil {
		t.Fatal(err)
	}

	r, err := Load(rep.ReproPath)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "map-sync-badcommit" || r.CrashSeq != first.Seq {
		t.Errorf("repro = {%s, %d}, want {map-sync-badcommit, %d}", r.Workload, r.CrashSeq, first.Seq)
	}
	res, err := Replay(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == "" {
		t.Fatal("replaying the repro did not reproduce the durability violation")
	}
}

func TestReplayRejectsStaleRepro(t *testing.T) {
	w, err := Lookup("map-sync-badcommit")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep, err := Explore(w, Options{ReproDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Load(rep.ReproPath)
	if err != nil {
		t.Fatal(err)
	}
	r.PrefixHash++ // simulate a repro recorded against different code
	if _, err := Replay(r); err == nil {
		t.Fatal("Replay accepted a repro whose trace prefix hash cannot match")
	}
}

func TestBudgetSampling(t *testing.T) {
	w, err := Lookup("map-sync")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(w, Options{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sampled {
		t.Fatal("budget 10 below the candidate count should force sampling")
	}
	if rep.Explored > 10 {
		t.Errorf("explored %d points over budget 10", rep.Explored)
	}
	if rep.Skipped != rep.OrderingPoints-rep.Explored {
		t.Errorf("skipped=%d, want %d-%d", rep.Skipped, rep.OrderingPoints, rep.Explored)
	}
	if len(rep.Failures) != 0 {
		t.Errorf("unexpected failures: %+v", rep.Failures)
	}
}

func TestReproRoundTrip(t *testing.T) {
	r := &Repro{
		Version:    reproVersion,
		Workload:   "map-tiny",
		CrashSeq:   7,
		Actions:    []pmem.Action{{AfterSeq: 3, Heap: 0, Line: -1}},
		PrefixHash: 0xdeadbeefcafe,
		Failure:    "heap 0 recovered to epoch boundary C3 but state diverges: …",
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != r.Workload || got.CrashSeq != r.CrashSeq ||
		got.PrefixHash != r.PrefixHash || len(got.Actions) != 1 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("no-such-workload"); err == nil {
		t.Error("Lookup of unknown workload should error")
	}
	names := Names()
	found := false
	for _, n := range names {
		if n == "map-tiny" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v, missing map-tiny", names)
	}
}

// A sanitized exploration of a clean workload must behave exactly like an
// unsanitized one — the sanitizer is a pure observer, so the reference trace
// (and therefore the crash-point space) is unchanged — and report no
// findings.
func TestExploreSanitizedCleanWorkload(t *testing.T) {
	w, err := Lookup("map-sync")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(w, Options{Budget: 10, Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sanitized {
		t.Fatal("report does not record the sanitized reference run")
	}
	if len(rep.SanFindings) != 0 {
		t.Fatalf("clean workload produced sanitizer findings: %v", rep.SanFindings)
	}
	if rep.Explored == 0 {
		t.Fatal("clean sanitized run skipped crash-point exploration")
	}
	for _, f := range rep.Failures {
		t.Errorf("crash point %d: %s", f.Seq, f.Err)
	}
}

// The seeded commit-before-flush workload must trip the sanitizer on its
// straight-line reference run, and the findings must short-circuit the
// crash-point loop — the sanitizer names the violating store, which the
// image-diff checker cannot.
func TestExploreSanitizedBadCommit(t *testing.T) {
	w, err := Lookup("map-sync-badcommit")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(w, Options{Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SanFindings) == 0 {
		t.Fatal("bad-commit workload produced no sanitizer findings")
	}
	found := false
	for _, f := range rep.SanFindings {
		if strings.Contains(f, "commit-unflushed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings name no commit-unflushed violation: %v", rep.SanFindings)
	}
	if rep.Explored != 0 {
		t.Fatalf("explored %d crash points despite sanitizer findings", rep.Explored)
	}
}

package crashexplore

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/frame"
	"github.com/respct/respct/internal/kv"
	"github.com/respct/respct/internal/pmem"
)

// kvFramesWorkload drives a kv.RespctStore whose durability lives in a
// frame-snapshot chain (internal/frame) rather than the heap itself: after
// every inline checkpoint the persistent image is snapshotted into an
// in-memory frame store — a full set first, then incremental deltas — and
// the FINAL snapshot is killed mid-container-write through a CrashFS write
// budget, so its manifest update never happens. Recover restores the heap
// from the latest certified chain and runs ordinary recovery on the restored
// image.
//
// This checks two contracts at every explored crash point:
//
//   - Frame round-trips are exact: the restored image recovers to a
//     certified checkpoint boundary exactly as the crashed heap itself
//     would, no matter where in the flush schedule the heap died (the
//     snapshots after the heap's crash capture its frozen persistent image).
//   - Aborted snapshot writes fall back: the killed final snapshot leaves
//     only orphan bytes, so recovery lands on the previous certified set —
//     an older but still certified checkpoint boundary.
//
// Snapshot writes touch no heap lines, so the workload's trace (and its
// crash-point space) is identical to a plain kv workload's.
type kvFramesWorkload struct {
	name        string
	batches     int
	opsPerBatch int
	keySpace    int
	crashBudget int64 // CrashFS byte budget armed before the final snapshot
}

func (w *kvFramesWorkload) Name() string { return w.name }

// frameParams keeps containers small and deterministic: 4 KiB frames over
// the 8 MiB explorer heap, two workers (container bytes are worker-count
// invariant), no compaction pressure within the run.
func (w *kvFramesWorkload) frameParams() frame.Params {
	return frame.Params{FrameBytes: 4 << 10, Workers: 2}
}

func (w *kvFramesWorkload) Setup(rec *pmem.Recorder, sanitize bool) (Run, error) {
	h := explorerHeap()
	rt, err := core.NewRuntime(h, explorerCoreConfig(false, sanitize))
	if err != nil {
		return nil, err
	}
	st, err := kv.NewRespctStore(rt, 0, 128)
	if err != nil {
		return nil, err
	}
	crash := frame.NewCrashFS(frame.NewMemFS(), 1<<62)
	store, err := frame.NewStore(crash, w.frameParams(), nil)
	if err != nil {
		return nil, err
	}
	r := &kvFramesRun{w: w, h: h, rt: rt, st: st, crash: crash, store: store, certified: Certified{}}
	rt.SetQuiescedHook(func(ending uint64) {
		r.certified[ending] = State(st.SnapshotLogical())
	})
	initialCheckpoint(rt, false)
	rec.Attach(h)
	return r, nil
}

type kvFramesRun struct {
	w         *kvFramesWorkload
	h         *pmem.Heap
	rt        *core.Runtime
	st        *kv.RespctStore
	crash     *frame.CrashFS
	store     *frame.Store
	certified Certified
}

func (r *kvFramesRun) Execute() error {
	w := r.w
	rt, st := r.rt, r.st
	t := rt.Thread(0)
	rng := rand.New(rand.NewSource(23))
	for b := 0; b < w.batches; b++ {
		for i := 0; i < w.opsPerBatch; i++ {
			key := fmt.Sprintf("key-%02d", rng.Intn(w.keySpace))
			if rng.Intn(4) == 3 {
				st.Delete(0, key)
			} else {
				st.Set(0, key, []byte(fmt.Sprintf("v%d-%d", b, i)))
			}
			st.PerOp(0)
		}
		t.CheckpointAllow()
		rt.Checkpoint()
		t.CheckpointPrevent(nil)
		if b == w.batches-1 {
			// The last snapshot dies mid-container-write: the manifest is
			// never updated, so recovery must fall back to batch b-1's chain.
			r.crash.Arm(w.crashBudget)
			if _, err := r.store.Snapshot(r.h, rt.DurableEpoch(), nil); !errors.Is(err, frame.ErrCrashed) {
				return fmt.Errorf("kv-frames: final snapshot survived a %d-byte write budget (err=%v)", w.crashBudget, err)
			}
		} else if _, err := r.store.Snapshot(r.h, rt.DurableEpoch(), nil); err != nil {
			return fmt.Errorf("kv-frames: snapshot after batch %d: %w", b, err)
		}
	}
	return nil
}

func (r *kvFramesRun) Certified(int) Certified { return r.certified }

func (r *kvFramesRun) SanFindings() []string { return r.rt.SanFindings() }

// Recover restores the heap from the latest certified frame chain and runs
// the standard recovery pass over the restored image — never touching the
// crashed heap, exactly like a reboot onto the snapshot store.
func (r *kvFramesRun) Recover() ([]Recovered, error) {
	img, _, err := r.store.Restore(1)
	if err != nil {
		return nil, err
	}
	h2, err := pmem.OpenImageBytes(img, pmem.Config{})
	if err != nil {
		return nil, err
	}
	rt2, rep, err := core.Recover(h2, explorerCoreConfig(false, false), 1)
	if err != nil {
		return nil, err
	}
	st2, err := kv.OpenRespctStore(rt2, 0)
	if err != nil {
		return nil, err
	}
	return []Recovered{{FailedEpoch: rep.FailedEpoch, State: State(st2.SnapshotLogical())}}, nil
}

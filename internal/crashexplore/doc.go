// Package crashexplore systematically explores crash points of a
// deterministic workload and checks that recovery lands on a completed
// checkpoint after every one of them — buffered durable linearizability,
// mechanically verified.
//
// The pipeline has three stages:
//
//  1. Record. The workload runs once with a pmem.Recorder attached to its
//     heaps. Every ordering-relevant persistence event — line write-back
//     (with its cause), fence, epoch commit, collision-log append — is
//     logged with a stable sequence number. Workloads are written so this
//     trace is byte-for-byte reproducible: one driving goroutine, serial
//     flushers, no background evictor, fixed RNG seeds.
//
//  2. Explore. Each trace position whose write-back changed the persistent
//     image is a candidate crash point (events that cannot change the image
//     are skipped up front). The workload is re-executed once per candidate
//     with the recorder scripted to crash every heap immediately after that
//     event, so the persistent image holds exactly the prefix of the
//     reference schedule. Re-executions whose persistent image hashes to
//     one already explored are deduplicated — recovery is a pure function
//     of the image. Above a budget, points are sampled with priority given
//     to the neighbourhoods of semantic annotations (epoch commits,
//     collision-log traffic), where ordering bugs live.
//
//  3. Check. After each crash the workload's heaps are recovered and the
//     recovered logical state is compared against the model snapshot
//     certified at checkpoint boundary failedEpoch-1 — the last completed
//     checkpoint before the crash. Any divergence (or recovery error) is a
//     durability-contract violation; the earliest failing point is written
//     out as a minimized, replayable repro that `respct-crash -replay` and
//     Replay consume.
//
// What the explorer covers and — just as important — what it does not is
// documented in docs/FAILURE-MODEL.md.
package crashexplore

package crashexplore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/kv"
	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/shard"
	"github.com/respct/respct/internal/structures"
	"github.com/respct/respct/internal/wire"
)

// State is the canonical logical state of one heap: a flat string→string
// map. Structure-specific snapshots (RespctMap's uint64 pairs, RespctStore's
// key/value strings) are converted to it so one checker serves every
// workload.
type State map[string]string

// Certified maps a checkpoint's ending epoch to the logical state the
// workload certified at that boundary, captured inside the quiesced hook
// while every worker was parked and before any line was flushed — the state
// the paper's BDL contract obliges recovery to reproduce if the next
// checkpoint does not complete.
type Certified map[uint64]State

// Recovered is one heap's post-recovery observation: the failed epoch the
// recovery pass read from the persistent image and the logical state it
// reconstructed.
type Recovered struct {
	FailedEpoch uint64
	State       State
}

// Workload is a named, deterministic crash-test program. Setup must build
// fresh heaps, make their initial state durable, install certification
// hooks, and only then attach the heaps to rec — the trace (and therefore
// the crash-point space) deliberately starts after setup, so mid-format
// crashes are out of scope (see docs/FAILURE-MODEL.md).
type Workload interface {
	// Name is the registry key; it fully determines the workload's
	// configuration, which is what makes a repro file self-contained.
	Name() string

	// Setup builds the workload and attaches its heaps to rec in a fixed
	// order (heap index i in the trace == element i of Run.Recover's
	// result and the argument to Run.Certified). sanitize attaches the
	// runtime persistency sanitizer (collect mode) to every runtime the
	// workload builds.
	Setup(rec *pmem.Recorder, sanitize bool) (Run, error)
}

// Run is one instantiation of a workload.
type Run interface {
	// Execute drives the workload to completion from a single goroutine.
	// It must terminate even if the heaps crash mid-run (post-crash
	// volatile execution is harmless: write-backs become no-ops).
	Execute() error

	// Certified returns heap i's certified checkpoint snapshots.
	Certified(heap int) Certified

	// Recover recovers every heap (in attach order) and returns what came
	// back. It must use recovery parallelism 1 so replays stay
	// deterministic.
	Recover() ([]Recovered, error)

	// SanFindings reports the persistency sanitizer's findings across the
	// run's runtimes; nil when the run was not sanitized or stayed clean.
	SanFindings() []string
}

// builders is the workload registry. Every entry is deterministic: same
// name → same trace, byte for byte.
var builders = map[string]func() Workload{
	"map-tiny": func() Workload {
		return &mapWorkload{name: "map-tiny", batches: 2, opsPerBatch: 3, keySpace: 4}
	},
	"map-sync": func() Workload {
		return &mapWorkload{name: "map-sync", batches: 4, opsPerBatch: 12, keySpace: 16}
	},
	"map-async": func() Workload {
		return &mapWorkload{name: "map-async", async: true, collideOps: 4,
			batches: 3, opsPerBatch: 10, keySpace: 12}
	},
	"map-sync-badcommit": func() Workload {
		return &mapWorkload{name: "map-sync-badcommit", badCommit: true,
			batches: 2, opsPerBatch: 6, keySpace: 8}
	},
	"kv-sync": func() Workload {
		return &kvWorkload{name: "kv-sync", batches: 3, opsPerBatch: 10, keySpace: 12}
	},
	"kv-async": func() Workload {
		return &kvWorkload{name: "kv-async", async: true, collideOps: 3,
			batches: 3, opsPerBatch: 8, keySpace: 10}
	},
	"shard-2-staggered": func() Workload {
		return &shardWorkload{name: "shard-2-staggered", batches: 4, opsPerBatch: 8, keySpace: 16}
	},
	"kv-frames": func() Workload {
		return &kvFramesWorkload{name: "kv-frames", batches: 4, opsPerBatch: 8, keySpace: 10,
			crashBudget: 100}
	},
	"kv-batch-sync": func() Workload {
		return &kvBatchWorkload{name: "kv-batch-sync", frames: 3, opsPerFrame: 8, keySpace: 10}
	},
	"kv-batch-async": func() Workload {
		return &kvBatchWorkload{name: "kv-batch-async", async: true, collide: true,
			frames: 3, opsPerFrame: 6, keySpace: 8}
	},
	"kv-scan": func() Workload {
		return &kvStructWorkload{name: "kv-scan", family: "scan", batches: 3, opsPerBatch: 8, keySpace: 10}
	},
	"kv-ttl": func() Workload {
		return &kvStructWorkload{name: "kv-ttl", family: "ttl", batches: 3, opsPerBatch: 8, keySpace: 8}
	},
	"kv-queue": func() Workload {
		return &kvStructWorkload{name: "kv-queue", family: "queue", batches: 3, opsPerBatch: 6, keySpace: 8}
	},
	"kv-log": func() Workload {
		return &kvStructWorkload{name: "kv-log", family: "log", batches: 3, opsPerBatch: 6, keySpace: 8}
	},
	"kv-multi": func() Workload {
		return &kvStructWorkload{name: "kv-multi", family: "multi", batches: 3, opsPerBatch: 6, keySpace: 8}
	},
}

// Lookup returns the registered workload for name.
func Lookup(name string) (Workload, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("crashexplore: unknown workload %q (have %v)", name, Names())
	}
	return b(), nil
}

// Names lists the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// workloadHeapBytes sizes every explorer heap. Small keeps per-crash-point
// cost down (each point re-formats the heap and hashes the whole persistent
// image) but must still fit a 2 MiB structure segment plus node blocks.
const workloadHeapBytes = 8 << 20

// explorerCoreConfig is the deterministic runtime shape every single-heap
// workload uses: one worker, serial flushing, no penalties. sanitize
// attaches the persistency sanitizer in collect mode.
func explorerCoreConfig(async, sanitize bool) core.Config {
	return core.Config{Threads: 1, AsyncFlush: async, SerialFlush: true, Sanitize: sanitize}
}

func explorerHeap() *pmem.Heap {
	return pmem.New(pmem.Config{Size: workloadHeapBytes, Chaos: true, Seed: 1})
}

// mapState canonicalizes a RespctMap snapshot.
func mapState(m map[uint64]uint64) State {
	s := make(State, len(m))
	for k, v := range m {
		s[strconv.FormatUint(k, 10)] = strconv.FormatUint(v, 10)
	}
	return s
}

// mapWorkload drives a structures.RespctMap with a deterministic op stream,
// checkpointing inline between batches. The async variant parks the
// background drain on a gate and performs colliding updates inside the
// drain window, so collision-log appends and collision flushes appear in
// the trace at deterministic positions.
type mapWorkload struct {
	name        string
	async       bool
	badCommit   bool // arm core.SetCommitBeforeFlushFault during Execute
	batches     int
	opsPerBatch int
	keySpace    int64
	collideOps  int // async only: ops issued while the drain is parked
}

func (w *mapWorkload) Name() string { return w.name }

func (w *mapWorkload) Setup(rec *pmem.Recorder, sanitize bool) (Run, error) {
	h := explorerHeap()
	rt, err := core.NewRuntime(h, explorerCoreConfig(w.async, sanitize))
	if err != nil {
		return nil, err
	}
	m, err := structures.NewRespctMap(rt, 0, 64)
	if err != nil {
		return nil, err
	}
	r := &mapRun{w: w, h: h, rt: rt, m: m, certified: Certified{}}
	rt.SetQuiescedHook(func(ending uint64) {
		r.certified[ending] = mapState(m.Snapshot())
	})
	initialCheckpoint(rt, w.async)
	rec.Attach(h)
	return r, nil
}

type mapRun struct {
	w         *mapWorkload
	h         *pmem.Heap
	rt        *core.Runtime
	m         *structures.RespctMap
	certified Certified
}

func (r *mapRun) Execute() error {
	w := r.w
	rt, m := r.rt, r.m
	t := rt.Thread(0)
	if w.badCommit {
		rt.SetCommitBeforeFlushFault(true)
		defer rt.SetCommitBeforeFlushFault(false)
	}
	rng := rand.New(rand.NewSource(42))
	var gate chan struct{}
	if w.async && w.collideOps > 0 {
		// Park the drain before it flushes anything: the worker's
		// colliding updates then land at fixed trace positions, after the
		// cut and before any drain write-back.
		rt.SetDrainHook(func(_ uint64, preCommit bool) {
			if !preCommit {
				<-gate
			}
		})
	}
	for b := 0; b < w.batches; b++ {
		for i := 0; i < w.opsPerBatch; i++ {
			k := uint64(rng.Int63n(w.keySpace)) + 1
			if rng.Intn(4) == 3 {
				m.Remove(0, k)
			} else {
				m.Insert(0, k, k*1000+uint64(b))
			}
			m.PerOp(0)
		}
		gate = make(chan struct{})
		t.CheckpointAllow()
		rt.Checkpoint()
		t.CheckpointPrevent(nil)
		if w.async {
			for i := 0; i < w.collideOps; i++ {
				// First updates of the new epoch on keys touched by the
				// draining one: these hit collideCell, flush the line
				// early and append to the collision log — all on this
				// goroutine, deterministically, while the drain is parked.
				k := uint64(rng.Int63n(w.keySpace)) + 1
				m.Insert(0, k, k*7+uint64(b))
				m.PerOp(0)
			}
			if w.collideOps > 0 {
				close(gate)
			}
			rt.WaitDrain()
		}
	}
	return nil
}

func (r *mapRun) Certified(int) Certified { return r.certified }

func (r *mapRun) SanFindings() []string { return r.rt.SanFindings() }

func (r *mapRun) Recover() ([]Recovered, error) {
	rt2, rep, err := core.Recover(r.h, explorerCoreConfig(r.w.async, false), 1)
	if err != nil {
		return nil, err
	}
	m2, err := structures.OpenRespctMap(rt2, 0)
	if err != nil {
		return nil, err
	}
	return []Recovered{{FailedEpoch: rep.FailedEpoch, State: mapState(m2.Snapshot())}}, nil
}

// kvWorkload is mapWorkload's shape over kv.RespctStore: variable-length
// keys and values, record allocation and free-list churn on delete.
type kvWorkload struct {
	name        string
	async       bool
	batches     int
	opsPerBatch int
	keySpace    int
	collideOps  int
}

func (w *kvWorkload) Name() string { return w.name }

func (w *kvWorkload) Setup(rec *pmem.Recorder, sanitize bool) (Run, error) {
	h := explorerHeap()
	rt, err := core.NewRuntime(h, explorerCoreConfig(w.async, sanitize))
	if err != nil {
		return nil, err
	}
	st, err := kv.NewRespctStore(rt, 0, 128)
	if err != nil {
		return nil, err
	}
	r := &kvRun{w: w, h: h, rt: rt, st: st, certified: Certified{}}
	rt.SetQuiescedHook(func(ending uint64) {
		r.certified[ending] = State(st.SnapshotLogical())
	})
	initialCheckpoint(rt, w.async)
	rec.Attach(h)
	return r, nil
}

type kvRun struct {
	w         *kvWorkload
	h         *pmem.Heap
	rt        *core.Runtime
	st        *kv.RespctStore
	certified Certified
}

func (r *kvRun) Execute() error {
	w := r.w
	rt, st := r.rt, r.st
	t := rt.Thread(0)
	rng := rand.New(rand.NewSource(7))
	var gate chan struct{}
	if w.async && w.collideOps > 0 {
		rt.SetDrainHook(func(_ uint64, preCommit bool) {
			if !preCommit {
				<-gate
			}
		})
	}
	for b := 0; b < w.batches; b++ {
		for i := 0; i < w.opsPerBatch; i++ {
			key := fmt.Sprintf("key-%02d", rng.Intn(w.keySpace))
			if rng.Intn(4) == 3 {
				st.Delete(0, key)
			} else {
				st.Set(0, key, []byte(fmt.Sprintf("v%d-%d", b, i)))
			}
			st.PerOp(0)
		}
		gate = make(chan struct{})
		t.CheckpointAllow()
		rt.Checkpoint()
		t.CheckpointPrevent(nil)
		if w.async {
			for i := 0; i < w.collideOps; i++ {
				key := fmt.Sprintf("key-%02d", rng.Intn(w.keySpace))
				st.Set(0, key, []byte(fmt.Sprintf("c%d-%d", b, i)))
				st.PerOp(0)
			}
			if w.collideOps > 0 {
				close(gate)
			}
			rt.WaitDrain()
		}
	}
	return nil
}

func (r *kvRun) Certified(int) Certified { return r.certified }

func (r *kvRun) SanFindings() []string { return r.rt.SanFindings() }

func (r *kvRun) Recover() ([]Recovered, error) {
	rt2, rep, err := core.Recover(r.h, explorerCoreConfig(r.w.async, false), 1)
	if err != nil {
		return nil, err
	}
	st2, err := kv.OpenRespctStore(rt2, 0)
	if err != nil {
		return nil, err
	}
	return []Recovered{{FailedEpoch: rep.FailedEpoch, State: State(st2.SnapshotLogical())}}, nil
}

// shardWorkload drives a 2-shard pool through its routing Store with
// staggered inline checkpoints: shard b%2 checkpoints after batch b, so the
// two heaps' epochs deliberately diverge — the per-shard recovery contract
// (each shard independently lands on its own last completed checkpoint) is
// what the checker exercises.
type shardWorkload struct {
	name        string
	batches     int
	opsPerBatch int
	keySpace    int
}

func (w *shardWorkload) Name() string { return w.name }

func (w *shardWorkload) shardConfig(sanitize bool) shard.Config {
	return shard.Config{
		Shards:              2,
		Workers:             1,
		Buckets:             128,
		HeapBytes:           workloadHeapBytes,
		Chaos:               true,
		Seed:                1,
		SerialFlush:         true,
		Sanitize:            sanitize,
		RecoveryParallelism: 1,
	}
}

func (w *shardWorkload) Setup(rec *pmem.Recorder, sanitize bool) (Run, error) {
	pool, err := shard.NewPool(w.shardConfig(sanitize))
	if err != nil {
		return nil, err
	}
	r := &shardRun{w: w, pool: pool,
		certified: []Certified{{}, {}}}
	for i := 0; i < pool.NumShards(); i++ {
		i := i
		sh := pool.Shard(i)
		sh.RT.SetQuiescedHook(func(ending uint64) {
			r.certified[i][ending] = State(sh.KV.SnapshotLogical())
		})
	}
	// Certify the initial state under the hooks before tracing starts
	// (CheckpointAll runs shards concurrently, which is fine untraced).
	pool.CheckpointAll()
	for i := 0; i < pool.NumShards(); i++ {
		rec.Attach(pool.Shard(i).Heap)
	}
	return r, nil
}

type shardRun struct {
	w         *shardWorkload
	pool      *shard.Pool
	certified []Certified
}

func (r *shardRun) Execute() error {
	w := r.w
	store := r.pool.Store()
	rng := rand.New(rand.NewSource(11))
	for b := 0; b < w.batches; b++ {
		for i := 0; i < w.opsPerBatch; i++ {
			key := fmt.Sprintf("key-%02d", rng.Intn(w.keySpace))
			if rng.Intn(4) == 3 {
				store.Delete(0, key)
			} else {
				store.Set(0, key, []byte(fmt.Sprintf("v%d-%d", b, i)))
			}
		}
		// Staggered schedule: only shard b%2 cuts a checkpoint this round.
		r.pool.Shard(b % r.pool.NumShards()).RT.Checkpoint()
	}
	return nil
}

func (r *shardRun) Certified(i int) Certified { return r.certified[i] }

func (r *shardRun) SanFindings() []string {
	var out []string
	for i := 0; i < r.pool.NumShards(); i++ {
		for _, f := range r.pool.Shard(i).RT.SanFindings() {
			out = append(out, fmt.Sprintf("shard %d: %s", i, f))
		}
	}
	return out
}

func (r *shardRun) Recover() ([]Recovered, error) {
	heaps := make([]*pmem.Heap, r.pool.NumShards())
	for i := range heaps {
		heaps[i] = r.pool.Shard(i).Heap
	}
	p2, rep, err := shard.Recover(r.w.shardConfig(false), heaps)
	if err != nil {
		return nil, err
	}
	out := make([]Recovered, len(heaps))
	for i := range out {
		out[i] = Recovered{
			FailedEpoch: rep.PerShard[i].FailedEpoch,
			State:       State(p2.Shard(i).KV.SnapshotLogical()),
		}
	}
	return out, nil
}

// kvBatchWorkload drives kv.RespctStore through the server's binary batch
// path: each round encodes a multi-op request frame with the wire codec,
// decodes it, and executes it whole with kv.ApplyFrame — the code a
// kv.Server worker runs for a pipelined client, under one checkpoint-prevent
// window per frame. The async variant applies a further frame while the
// previous epoch's drain is parked on a gate: a client batch in flight
// across the checkpoint cut. The checker then proves batched execution is
// atomic w.r.t. the certified epoch the same way single ops are — every
// crash point recovers to a certified checkpoint state, never to a state
// only reachable by splitting a frame across the cut.
type kvBatchWorkload struct {
	name        string
	async       bool
	collide     bool // async only: apply a frame while the drain is parked
	frames      int
	opsPerFrame int
	keySpace    int
}

func (w *kvBatchWorkload) Name() string { return w.name }

func (w *kvBatchWorkload) Setup(rec *pmem.Recorder, sanitize bool) (Run, error) {
	h := explorerHeap()
	rt, err := core.NewRuntime(h, explorerCoreConfig(w.async, sanitize))
	if err != nil {
		return nil, err
	}
	st, err := kv.NewRespctStore(rt, 0, 128)
	if err != nil {
		return nil, err
	}
	r := &kvBatchRun{w: w, h: h, rt: rt, st: st, certified: Certified{}}
	rt.SetQuiescedHook(func(ending uint64) {
		r.certified[ending] = State(st.SnapshotLogical())
	})
	initialCheckpoint(rt, w.async)
	rec.Attach(h)
	return r, nil
}

type kvBatchRun struct {
	w         *kvBatchWorkload
	h         *pmem.Heap
	rt        *core.Runtime
	st        *kv.RespctStore
	certified Certified
}

// buildFrame encodes one deterministic request batch and decodes it back,
// exactly as a frame arrives at a server worker.
func (r *kvBatchRun) buildFrame(rng *rand.Rand, round int, f *wire.ReqFrame) error {
	var b wire.ReqBuilder
	for i := 0; i < r.w.opsPerFrame; i++ {
		key := fmt.Sprintf("key-%02d", rng.Intn(r.w.keySpace))
		switch rng.Intn(5) {
		case 0:
			b.Delete(key)
		case 1:
			b.Get(key)
		default:
			b.Set(key, []byte(fmt.Sprintf("v%d-%d", round, i)))
		}
	}
	return f.Decode(bytes.NewReader(b.Bytes()))
}

func (r *kvBatchRun) Execute() error {
	w := r.w
	rt, st := r.rt, r.st
	t := rt.Thread(0)
	rng := rand.New(rand.NewSource(23))
	var f wire.ReqFrame
	var resp wire.RespBuilder
	var gate chan struct{}
	if w.async && w.collide {
		rt.SetDrainHook(func(_ uint64, preCommit bool) {
			if !preCommit {
				<-gate
			}
		})
	}
	for round := 0; round < w.frames; round++ {
		if err := r.buildFrame(rng, round, &f); err != nil {
			return err
		}
		resp.Reset()
		// The whole frame executes inside this goroutine's prevent window,
		// mirroring Server.handleBatch.
		if err := kv.ApplyFrame(st, 0, &f, &resp); err != nil {
			return err
		}
		gate = make(chan struct{})
		t.CheckpointAllow()
		rt.Checkpoint()
		t.CheckpointPrevent(nil)
		if w.async {
			if w.collide {
				// The in-flight batch: a whole frame of first-updates applied
				// while the previous epoch's drain is parked on the gate.
				if err := r.buildFrame(rng, 100+round, &f); err != nil {
					return err
				}
				resp.Reset()
				if err := kv.ApplyFrame(st, 0, &f, &resp); err != nil {
					return err
				}
				close(gate)
			}
			rt.WaitDrain()
		}
	}
	return nil
}

func (r *kvBatchRun) Certified(int) Certified { return r.certified }

func (r *kvBatchRun) SanFindings() []string { return r.rt.SanFindings() }

func (r *kvBatchRun) Recover() ([]Recovered, error) {
	rt2, rep, err := core.Recover(r.h, explorerCoreConfig(r.w.async, false), 1)
	if err != nil {
		return nil, err
	}
	st2, err := kv.OpenRespctStore(rt2, 0)
	if err != nil {
		return nil, err
	}
	return []Recovered{{FailedEpoch: rep.FailedEpoch, State: State(st2.SnapshotLogical())}}, nil
}

// initialCheckpoint makes a freshly-built single-runtime workload durable
// (and certifies its pre-trace state through the already-installed quiesced
// hook) before the recorder attaches.
func initialCheckpoint(rt *core.Runtime, async bool) {
	t := rt.Thread(0)
	t.CheckpointAllow()
	rt.Checkpoint()
	t.CheckpointPrevent(nil)
	if async {
		rt.WaitDrain()
	}
}

package crashexplore

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/respct/respct/internal/pmem"
)

// Options configures one exploration.
type Options struct {
	// Budget bounds how many crash points are executed. 0 means
	// exhaustive: every image-changing write-back in the reference trace.
	// When the candidate set exceeds the budget, points are sampled —
	// annotation neighbourhoods (epoch commits, collision-log traffic)
	// first, then an even stride across the rest.
	Budget int

	// Actions are scripted spontaneous write-backs (cache evictions)
	// injected into both the reference run and every re-execution, keyed
	// to trace sequence numbers. They perturb the persistence schedule
	// without breaking determinism.
	Actions []pmem.Action

	// ReproDir, when non-empty, receives a minimized repro file for the
	// earliest failing crash point.
	ReproDir string

	// Sanitize attaches the runtime persistency sanitizer (internal/psan)
	// to the reference run. Findings short-circuit the exploration: a
	// workload that breaks flush discipline on its straight-line path will
	// fail crash points for the same root cause, so the sanitizer report —
	// which names the violating store — is the better diagnostic. The
	// crash-point re-executions stay unsanitized (the sanitizer is a pure
	// observer, so the reference trace is unchanged either way).
	Sanitize bool
}

// Failure is one crash point whose recovery broke the durability contract.
type Failure struct {
	// Seq is the trace sequence number crashed after.
	Seq uint64

	// Err describes the divergence (or the recovery error).
	Err string

	// FailedEpochs are the per-heap failed epochs recovery reported, when
	// recovery itself succeeded.
	FailedEpochs []uint64
}

// Report summarises one exploration.
type Report struct {
	Workload string

	// Events is the reference trace length; WriteBacks counts its line
	// write-back events; OrderingPoints counts the candidate crash points
	// (write-backs that changed the persistent image).
	Events         int
	WriteBacks     int
	OrderingPoints int

	// Explored counts crash points actually executed; Deduped, the subset
	// whose persistent image matched an already-checked image (recovery
	// skipped); Skipped, candidates dropped by budget sampling.
	Explored int
	Deduped  int
	Skipped  int
	Sampled  bool

	Failures  []Failure
	ReproPath string
	Elapsed   time.Duration

	// Sanitized records that the reference run carried the persistency
	// sanitizer; SanFindings holds its findings (exploration stops at the
	// reference run when any exist).
	Sanitized   bool
	SanFindings []string
}

// Explore records a reference trace for w, crashes it at every candidate
// ordering point (or a budgeted sample), recovers, and checks buffered
// durable linearizability after each crash. It returns an error only when
// exploration itself cannot proceed (setup failure, nondeterministic
// workload); durability violations are reported in Report.Failures.
func Explore(w Workload, opt Options) (*Report, error) {
	start := time.Now()
	ref, refRun, err := runOnce(w, opt.Actions, -1, opt.Sanitize)
	if err != nil {
		return nil, fmt.Errorf("crashexplore: reference run: %w", err)
	}
	events := ref.Events()
	rep := &Report{Workload: w.Name(), Events: len(events), Sanitized: opt.Sanitize}
	if opt.Sanitize {
		if rep.SanFindings = refRun.SanFindings(); len(rep.SanFindings) > 0 {
			// The straight-line run already broke the protocol; crash-point
			// exploration would only rediscover the same bug less precisely.
			rep.Elapsed = time.Since(start)
			return rep, nil
		}
	}
	var candidates []uint64
	for _, e := range events {
		if e.Kind == pmem.EvWriteBack {
			rep.WriteBacks++
			if e.Changed {
				candidates = append(candidates, e.Seq)
			}
		}
	}
	rep.OrderingPoints = len(candidates)

	points := candidates
	if opt.Budget > 0 && len(candidates) > opt.Budget {
		points = samplePoints(events, candidates, opt.Budget)
		rep.Sampled = true
		rep.Skipped = len(candidates) - len(points)
	}

	seen := make(map[uint64]bool) // persistent-image hashes already checked
	for _, k := range points {
		rec2, run2, err := runOnce(w, opt.Actions, int64(k), false)
		if err != nil {
			return nil, fmt.Errorf("crashexplore: crash point %d: %w", k, err)
		}
		ev2 := rec2.Events()
		if uint64(len(ev2)) <= k || pmem.TraceHash(ev2[:k+1]) != pmem.TraceHash(events[:k+1]) {
			return nil, fmt.Errorf(
				"crashexplore: workload %q is nondeterministic: replay of crash point %d diverged from the reference trace prefix",
				w.Name(), k)
		}
		rep.Explored++
		img := imageHash(rec2.Heaps())
		if seen[img] {
			rep.Deduped++
			continue
		}
		seen[img] = true
		if _, f := checkCrashPoint(run2, k); f != nil {
			rep.Failures = append(rep.Failures, *f)
		}
	}

	if len(rep.Failures) > 0 && opt.ReproDir != "" {
		// Failures are found in ascending seq order, so Failures[0] is
		// already the minimal crash point.
		path, err := writeRepro(opt.ReproDir, w.Name(), opt.Actions, events, rep.Failures[0])
		if err != nil {
			return nil, err
		}
		rep.ReproPath = path
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// runOnce executes w with actions scripted and, when crashSeq >= 0, every
// heap crashed immediately after trace event crashSeq. Tracers are detached
// before returning so recovery runs untraced. sanitize arms the persistency
// sanitizer on the workload's runtimes.
func runOnce(w Workload, actions []pmem.Action, crashSeq int64, sanitize bool) (*pmem.Recorder, Run, error) {
	rec := pmem.NewRecorder()
	if crashSeq >= 0 {
		// Registered before the script so the crash fires first when both
		// land on the same event: the scripted eviction then no-ops
		// instead of extending the persistent image past the crash point.
		rec.CrashAllAt(uint64(crashSeq))
	}
	rec.Script(actions)
	run, err := w.Setup(rec, sanitize)
	if err != nil {
		return nil, nil, err
	}
	if err := run.Execute(); err != nil {
		return nil, nil, err
	}
	for _, h := range rec.Heaps() {
		h.SetTracer(nil, 0)
	}
	return rec, run, nil
}

// checkCrashPoint recovers run's heaps and verifies each recovered state
// equals the snapshot certified at that heap's failed epoch minus one — the
// last checkpoint that completed before the crash. A missing snapshot means
// the empty state (no checkpoint with net changes completed yet). The
// per-heap failed epochs are returned alongside any violation.
func checkCrashPoint(run Run, seq uint64) ([]uint64, *Failure) {
	recs, err := run.Recover()
	if err != nil {
		return nil, &Failure{Seq: seq, Err: "recovery failed: " + err.Error()}
	}
	epochs := make([]uint64, len(recs))
	for i, rv := range recs {
		epochs[i] = rv.FailedEpoch
	}
	for i, rv := range recs {
		want := run.Certified(i)[rv.FailedEpoch-1]
		if d := diffStates(want, rv.State); d != "" {
			return epochs, &Failure{
				Seq: seq,
				Err: fmt.Sprintf("heap %d recovered to epoch boundary C%d but state diverges: %s",
					i, rv.FailedEpoch-1, d),
				FailedEpochs: epochs,
			}
		}
	}
	return epochs, nil
}

// diffStates returns "" when got matches want (nil want == empty state),
// otherwise a short description of the first few divergent keys.
func diffStates(want, got State) string {
	var diffs []string
	for k, wv := range want {
		if gv, ok := got[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("missing %q=%q", k, wv))
		} else if gv != wv {
			diffs = append(diffs, fmt.Sprintf("%q=%q want %q", k, gv, wv))
		}
	}
	for k, gv := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("extra %q=%q", k, gv))
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	sort.Strings(diffs)
	if len(diffs) > 4 {
		diffs = append(diffs[:4], fmt.Sprintf("(+%d more)", len(diffs)-4))
	}
	return strings.Join(diffs, ", ")
}

// imageHash combines every heap's persistent-image hash into one value.
// Two crash points with equal image hashes recover identically (recovery is
// a deterministic function of the persistent image), so the second is
// skipped.
func imageHash(heaps []*pmem.Heap) uint64 {
	const prime64 = 1099511628211
	h := uint64(1469598103934665603)
	for _, heap := range heaps {
		x := heap.HashPersistent()
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	return h
}

// samplePoints picks at most budget candidates. Candidates within
// annotationWindow trace events of a semantic annotation (epoch commit,
// collision-log arm/append) are taken first — commit-ordering bugs cluster
// there — then the remainder is covered with an even stride. The result is
// sorted ascending and deterministic.
func samplePoints(events []pmem.TraceEvent, candidates []uint64, budget int) []uint64 {
	const annotationWindow = 6
	var annSeqs []uint64
	for _, e := range events {
		if e.Kind == pmem.EvAnnotation {
			annSeqs = append(annSeqs, e.Seq)
		}
	}
	nearAnnotation := func(c uint64) bool {
		i := sort.Search(len(annSeqs), func(i int) bool { return annSeqs[i]+annotationWindow >= c })
		return i < len(annSeqs) && annSeqs[i] <= c+annotationWindow
	}

	picked := make(map[uint64]bool, budget)
	var rest []uint64
	for _, c := range candidates {
		if len(picked) < budget && nearAnnotation(c) {
			picked[c] = true
		} else {
			rest = append(rest, c)
		}
	}
	if n := budget - len(picked); n > 0 && len(rest) > 0 {
		stride := len(rest) / n
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(rest) && len(picked) < budget; i += stride {
			picked[rest[i]] = true
		}
	}
	out := make([]uint64, 0, len(picked))
	for c := range picked {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package crash

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/structures"
)

// AsyncSoakConfig parameterises a crash soak against an asynchronous-flush
// runtime. The zero targeting fields give a random-timing crash like MapSoak;
// CrashDrain aims the crash inside a specific background drain window, the
// hardest region for recovery — workers have already resumed the next epoch
// while the cut's lines are still in flight to NVMM.
type AsyncSoakConfig struct {
	MapSoakConfig
	CrashDrain uint64        // crash during the k-th post-init drain (1-based); 0 = random timing
	PreCommit  bool          // with CrashDrain: crash after the flush, just before the epoch persists
	DrainDelay time.Duration // dwell at drain start so workers race the drain window
}

// AsyncSoakReport extends SoakReport with drain-specific observations.
type AsyncSoakReport struct {
	SoakReport
	Drains            uint64 // background drains entered before the crash
	DrainInterrupted  bool   // recovery found an uncommitted drain
	CollisionsLogged  uint64 // worker undo-log appends during drain windows
	CollisionsApplied int    // log entries recovery replayed
}

// AsyncMapSoak is MapSoak against an AsyncFlush runtime: concurrent workers
// over a RespctMap, periodic checkpoints whose flushes drain in the
// background, a chaos evictor pushing partial state into NVMM — then a crash,
// recovery, and comparison against the snapshot certified at the last
// *durably committed* checkpoint. With CrashDrain set, the kill lands inside
// the chosen drain window and recovery must fall back to the previous
// completed checkpoint.
func AsyncMapSoak(cfg AsyncSoakConfig) (*AsyncSoakReport, error) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 256 << 20
	}
	h := pmem.New(pmem.Config{Size: cfg.HeapBytes, Chaos: true, Seed: cfg.Seed})
	rt, err := core.NewRuntime(h, core.Config{Threads: cfg.Threads, AsyncFlush: true})
	if err != nil {
		return nil, err
	}
	m, err := structures.NewRespctMap(rt, 0, cfg.Buckets)
	if err != nil {
		return nil, err
	}

	// As in MapSoak, certify a logical snapshot at every cut, keyed by the
	// epoch the checkpoint closes. Under async flush the cut's durability
	// commits only when its drain does, but the invariant is unchanged:
	// recovery rolls back to the last checkpoint whose epoch counter
	// persisted, so the recovered state must equal snaps[failedEpoch-1].
	var certMu sync.Mutex
	snaps := map[uint64]map[uint64]uint64{}
	rt.SetQuiescedHook(func(ending uint64) {
		snap := m.Snapshot()
		certMu.Lock()
		snaps[ending] = snap
		certMu.Unlock()
	})
	// Durable init checkpoint (counts as drain #0; CrashDrain is 1-based
	// over the drains entered after the hook below is installed).
	for i := 0; i < cfg.Threads; i++ {
		rt.Thread(i).CheckpointAllow()
	}
	rt.Checkpoint()
	for i := 0; i < cfg.Threads; i++ {
		rt.Thread(i).CheckpointPrevent(nil)
	}
	rt.WaitDrain()

	var drains atomic.Uint64
	var crashedDrain atomic.Uint64 // epoch of the drain the hook killed
	rt.SetDrainHook(func(ending uint64, preCommit bool) {
		if h.Crashed() {
			return
		}
		if !preCommit {
			n := drains.Add(1)
			if cfg.DrainDelay > 0 {
				// Dwell with workers running: epoch-N+1 updates collide
				// with the cut's pending lines while we hold the drain open.
				time.Sleep(cfg.DrainDelay)
			}
			if cfg.CrashDrain != 0 && n == cfg.CrashDrain && !cfg.PreCommit {
				crashedDrain.Store(ending)
				h.Crash()
			}
			return
		}
		if cfg.CrashDrain != 0 && drains.Load() == cfg.CrashDrain && cfg.PreCommit {
			crashedDrain.Store(ending)
			h.Crash()
		}
	})

	ckStop := make(chan struct{})
	var ckWg sync.WaitGroup
	ckWg.Add(1)
	go func() {
		defer ckWg.Done()
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-ckStop:
				return
			case <-tick.C:
				if h.Crashed() {
					return
				}
				rt.Checkpoint()
			}
		}
	}()

	ev := pmem.NewEvictor(h, cfg.EvictRate, cfg.Seed)
	ev.Start()

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(th)*31))
			for i := 0; i < cfg.OpsPerThread && !stop.Load(); i++ {
				k := uint64(rng.Int63n(int64(cfg.KeySpace))) + 1
				switch rng.Intn(3) {
				case 0:
					m.Insert(th, k, k*2+uint64(th))
				case 1:
					m.Remove(th, k)
				default:
					m.Get(th, k)
				}
				m.PerOp(th)
				ops.Add(1)
			}
			m.ThreadExit(th)
		}(th)
	}

	if cfg.CrashDrain != 0 {
		// The drain hook pulls the trigger; wait for it (bounded, in case
		// the workload finishes before the k-th drain ever starts).
		deadline := time.Now().Add(time.Duration(cfg.CrashDrain+16) * cfg.Interval * 4)
		for !h.Crashed() && time.Now().Before(deadline) {
			time.Sleep(cfg.Interval / 4)
		}
		h.Crash() // no-op if the hook already fired
	} else {
		time.Sleep(time.Duration(cfg.Seed%7+2) * cfg.Interval / 2)
		h.Crash()
	}
	stop.Store(true)
	wg.Wait()
	ev.Stop()
	close(ckStop)
	ckWg.Wait()
	// Let any zombie drain goroutine finish before Recover reopens the
	// heap's volatile image underneath it.
	rt.WaitDrain()

	ckCount := rt.Stats().Checkpoints
	logged := rt.Stats().CollisionsLogged

	rt2, rep, err := core.Recover(h, core.Config{Threads: cfg.Threads, AsyncFlush: true}, 4)
	if err != nil {
		return nil, err
	}
	certMu.Lock()
	want := snaps[rep.FailedEpoch-1]
	certMu.Unlock()
	m2, err := structures.OpenRespctMap(rt2, 0)
	if err != nil {
		return nil, err
	}
	got := m2.Snapshot()

	report := &AsyncSoakReport{
		SoakReport: SoakReport{
			Checkpoints:    ckCount,
			CertifiedKeys:  len(want),
			RecoveredKeys:  len(got),
			FailedEpoch:    rep.FailedEpoch,
			OpsBeforeCrash: ops.Load(),
		},
		Drains:            drains.Load(),
		DrainInterrupted:  rep.DrainInterrupted,
		CollisionsLogged:  logged,
		CollisionsApplied: rep.CollisionsApplied,
	}
	if e := crashedDrain.Load(); e != 0 && rep.FailedEpoch != e {
		return report, fmt.Errorf("crash: killed inside the drain of epoch %d but recovery failed epoch %d", e, rep.FailedEpoch)
	}
	if len(got) != len(want) {
		return report, fmt.Errorf("crash: recovered %d keys, certified snapshot has %d", len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			return report, fmt.Errorf("crash: key %d recovered as %d,%v; certified %d", k, gv, ok, v)
		}
	}
	return report, nil
}

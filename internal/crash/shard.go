package crash

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/shard"
)

// ShardedSoakConfig parameterises one sharded KV crash soak.
type ShardedSoakConfig struct {
	Shards    int           // shard (heap) count
	Threads   int           // concurrent workers driving the sharded store
	Buckets   int           // per-shard buckets
	KeySpace  int           // distinct string keys
	Interval  time.Duration // per-shard checkpoint period
	Sync      bool          // synchronized instead of staggered checkpoints
	EvictRate int           // chaos evictor probe rate per shard
	Seed      int64         // workload and chaos RNG seed
	HeapBytes int64         // per-shard heap size
	RunFor    time.Duration // wall-clock run length before the crash fires
}

// ShardedSoakReport describes one sharded soak run.
type ShardedSoakReport struct {
	Shards         int      // shards the soak ran with
	Checkpoints    uint64   // checkpoints completed across all shards
	FailedEpochs   []uint64 // per-shard interrupted epochs (they differ under staggering)
	CertifiedKeys  int      // summed over shards
	RecoveredKeys  int      // keys recovered, summed over shards
	OpsBeforeCrash uint64   // store ops completed when the crash fired
}

// ShardedKVSoak validates buffered durable linearizability per shard:
// concurrent workers hammer a sharded store whose shards live on
// chaos-mode heaps (random eviction pushes torn state into NVMM), the whole
// pool crashes at a random moment, every shard recovers in parallel, and
// each shard's recovered state must equal the logical snapshot certified at
// that shard's own last completed checkpoint. Shards checkpoint on
// independent (staggered) schedules, so the recovered prefixes legitimately
// differ in freshness across shards — each is validated independently.
func ShardedKVSoak(cfg ShardedSoakConfig) (*ShardedSoakReport, error) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 << 20
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = time.Duration(cfg.Seed%5+2) * 3 * time.Millisecond
	}
	pcfg := shard.Config{
		Shards:    cfg.Shards,
		Workers:   cfg.Threads,
		Buckets:   cfg.Buckets,
		HeapBytes: cfg.HeapBytes,
		Interval:  cfg.Interval,
		Sync:      cfg.Sync,
		Chaos:     true,
		Seed:      cfg.Seed,
	}
	pool, err := shard.NewPool(pcfg)
	if err != nil {
		return nil, err
	}
	store := pool.Store()

	// Certify a per-shard logical snapshot at each shard checkpoint, keyed
	// by the epoch that checkpoint closes. The hook runs while the shard's
	// workers are parked, before its flush: what it sees is exactly what
	// that checkpoint makes durable for that shard. Hooks must be installed
	// before Start so no checkpoint can race the installation.
	var certMu sync.Mutex
	snaps := make([]map[uint64]map[string]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		snaps[i] = map[uint64]map[string]string{}
		sh := pool.Shard(i)
		sh.RT.SetQuiescedHook(func(ending uint64) {
			snap := sh.KV.SnapshotLogical()
			certMu.Lock()
			snaps[sh.Index][ending] = snap
			certMu.Unlock()
		})
	}
	pool.Start()

	evictors := make([]*pmem.Evictor, cfg.Shards)
	for i := range evictors {
		evictors[i] = pmem.NewEvictor(pool.Shard(i).Heap, cfg.EvictRate, cfg.Seed+int64(i)*7)
		evictors[i].Start()
	}

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(th)*17))
			for !stop.Load() {
				key := fmt.Sprintf("user%06d", rng.Intn(cfg.KeySpace))
				switch rng.Intn(5) {
				case 0:
					store.Delete(th, key)
				case 1:
					store.Get(th, key)
				default:
					store.Set(th, key, []byte(fmt.Sprintf("v%d-%d", th, rng.Intn(1000))))
				}
				ops.Add(1)
			}
			store.ThreadExit(th)
		}(th)
	}

	// Power failure at a random point while work is in flight: every shard
	// heap crashes (the machine hosts them all).
	time.Sleep(cfg.RunFor)
	for i := 0; i < cfg.Shards; i++ {
		pool.Shard(i).Heap.Crash()
	}
	stop.Store(true)
	wg.Wait()
	for _, ev := range evictors {
		ev.Stop()
	}
	ckCount := pool.Stats().Checkpoints
	heaps := make([]*pmem.Heap, cfg.Shards)
	for i := range heaps {
		heaps[i] = pool.Shard(i).Heap
	}
	pool.Close()

	rcfg := pcfg
	rcfg.Interval = 0 // the recovered pool is only read, no checkpointer
	pool2, rep, err := shard.Recover(rcfg, heaps)
	if err != nil {
		return nil, err
	}
	defer pool2.Close()

	report := &ShardedSoakReport{
		Shards:         cfg.Shards,
		Checkpoints:    ckCount,
		FailedEpochs:   rep.FailedEpochs(),
		OpsBeforeCrash: ops.Load(),
	}
	// Validate each shard's recovered prefix independently against the
	// snapshot its own last completed checkpoint certified.
	for i := 0; i < cfg.Shards; i++ {
		failed := rep.PerShard[i].FailedEpoch
		certMu.Lock()
		want := snaps[i][failed-1] // nil (empty) if this shard never checkpointed under load
		certMu.Unlock()
		got := pool2.Shard(i).KV.SnapshotLogical()
		report.CertifiedKeys += len(want)
		report.RecoveredKeys += len(got)
		if len(got) != len(want) {
			return report, fmt.Errorf("crash: shard %d recovered %d keys, certified snapshot has %d (failed epoch %d)",
				i, len(got), len(want), failed)
		}
		for k, v := range want {
			if gv, ok := got[k]; !ok || gv != v {
				return report, fmt.Errorf("crash: shard %d key %q = %q,%v; certified %q", i, k, gv, ok, v)
			}
		}
		// Routing invariant: every recovered key belongs on this shard.
		for k := range got {
			if home := pool2.ShardFor(k); home != i {
				return report, fmt.Errorf("crash: key %q recovered on shard %d but routes to %d", k, i, home)
			}
		}
	}
	return report, nil
}

package crash

import (
	"testing"
	"time"
)

func asyncSoakConfig(seed int64) AsyncSoakConfig {
	return AsyncSoakConfig{MapSoakConfig: soakConfig(seed)}
}

// TestAsyncMapSoakCrashInDrainWindow kills the heap at the start of a chosen
// background drain, with the drain held open long enough for workers to
// collide with the cut's pending lines. Recovery must land exactly on the
// previous completed checkpoint and report the interrupted drain.
func TestAsyncMapSoakCrashInDrainWindow(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(6); seed++ {
		cfg := asyncSoakConfig(seed)
		cfg.CrashDrain = 2 + uint64(seed%3)
		cfg.DrainDelay = 2 * cfg.Interval
		rep, err := AsyncMapSoak(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
		}
		if !rep.DrainInterrupted {
			t.Fatalf("seed %d: targeted mid-drain crash not detected by recovery (report %+v)", seed, rep)
		}
		if rep.OpsBeforeCrash == 0 {
			t.Fatalf("seed %d: crash before any work", seed)
		}
	}
}

// TestAsyncMapSoakCrashPreCommit crashes after the drain's flush completed
// but before the epoch counter persisted: every cut line is durable, yet the
// checkpoint never committed, so recovery must still fall back.
func TestAsyncMapSoakCrashPreCommit(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(4); seed++ {
		cfg := asyncSoakConfig(seed)
		cfg.CrashDrain = 2
		cfg.PreCommit = true
		cfg.DrainDelay = cfg.Interval
		rep, err := AsyncMapSoak(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
		}
		if !rep.DrainInterrupted {
			t.Fatalf("seed %d: pre-commit crash not detected by recovery (report %+v)", seed, rep)
		}
	}
}

// TestAsyncMapSoakRandomCrash is the plain MapSoak property under async
// flush: a crash at an arbitrary point — inside or outside drain windows —
// always recovers to the last durably committed checkpoint's snapshot.
func TestAsyncMapSoakRandomCrash(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(8); seed++ {
		rep, err := AsyncMapSoak(asyncSoakConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
		}
	}
}

// TestAsyncMapSoakSlowDrains stretches every drain across half a checkpoint
// interval with no targeted crash: checkpoints queue up behind in-flight
// drains, collisions become routine, and the random crash often lands inside
// a window.
func TestAsyncMapSoakSlowDrains(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(4); seed++ {
		cfg := asyncSoakConfig(seed)
		cfg.DrainDelay = cfg.Interval / 2
		cfg.MapSoakConfig.Interval = 6 * time.Millisecond
		rep, err := AsyncMapSoak(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
		}
	}
}

package crash

import (
	"sync"
	"testing"
	"time"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/structures"
)

// TestEADRSkipFlushRecovers exercises the §6 extension: on an eADR platform
// (caches in the persistence domain) ResPCT can run with SkipFlush —
// checkpoints only advance the epoch — because every store is already
// durable in order. Recovery still rolls the crashed epoch back via InCLL,
// so buffered durable linearizability is preserved without a single
// explicit flush of the data.
func TestEADRSkipFlushRecovers(t *testing.T) {
	h := pmem.New(pmem.EADRConfig(64 << 20))
	rt, err := core.NewRuntime(h, core.Config{Threads: 1, SkipFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := structures.NewRespctMap(rt, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		m.Insert(0, k, k+7)
	}
	rt.CheckpointIdle()
	want := m.Snapshot()

	// Doomed epoch: partial state sits in the "caches", which the eADR
	// battery flushes at crash time — recovery must still undo it.
	for k := uint64(1); k <= 50; k++ {
		m.Insert(0, k, 9999)
	}
	for k := uint64(200); k <= 230; k++ {
		m.Insert(0, k, k)
	}
	h.Crash()

	rt2, rep, err := core.Recover(h, core.Config{Threads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsRolledBack == 0 {
		t.Fatal("eADR crash persisted the whole doomed epoch but nothing was rolled back")
	}
	m2, err := structures.OpenRespctMap(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
}

// TestEADRSoak runs the full multi-threaded soak on an eADR heap with
// SkipFlush — the strongest form of the extension.
func TestEADRSoak(t *testing.T) {
	h := pmem.New(pmem.EADRConfig(128 << 20))
	rt, err := core.NewRuntime(h, core.Config{Threads: 4, SkipFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := structures.NewRespctMap(rt, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckpointIdle()

	snaps := map[uint64]map[uint64]uint64{}
	rt.SetQuiescedHook(func(ending uint64) { snaps[ending] = m.Snapshot() })

	done := make(chan struct{})
	go func() {
		for i := 0; i < 20; i++ {
			time.Sleep(2 * time.Millisecond)
			rt.Checkpoint()
		}
		close(done)
	}()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			x := uint64(th + 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					rt.Thread(th).CheckpointAllow()
					return
				default:
				}
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				k := x%2048 + 1
				if x%2 == 0 {
					m.Insert(th, k, k)
				} else {
					m.Remove(th, k)
				}
				m.PerOp(th)
			}
		}(th)
	}
	<-done
	h.Crash()
	close(stop)
	wg.Wait() // workers must be gone before Reopen rebuilds the volatile image

	rt2, rep, err := core.Recover(h, core.Config{Threads: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := snaps[rep.FailedEpoch-1]
	m2, err := structures.OpenRespctMap(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, certified %d (failed epoch %d)", len(got), len(want), rep.FailedEpoch)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
}

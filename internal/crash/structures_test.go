package crash

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/structures"
)

// TestSkipListSoak: the sorted map under chaos eviction, concurrent workers,
// random crash — recovered contents must equal the certified snapshot, in
// order.
func TestSkipListSoak(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(4); seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const threads = 4
			h := pmem.New(pmem.Config{Size: 256 << 20, Chaos: true, Seed: seed})
			rt, err := core.NewRuntime(h, core.Config{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			sl, err := structures.NewRespctSkipList(rt, 0)
			if err != nil {
				t.Fatal(err)
			}
			rt.CheckpointIdle()

			type snap struct{ keys, vals []uint64 }
			var certMu sync.Mutex
			snaps := map[uint64]snap{}
			rt.SetQuiescedHook(func(ending uint64) {
				k, v := sl.Snapshot()
				certMu.Lock()
				snaps[ending] = snap{k, v}
				certMu.Unlock()
			})
			ckStop := make(chan struct{})
			var ckWg sync.WaitGroup
			ckWg.Add(1)
			go func() {
				defer ckWg.Done()
				tick := time.NewTicker(4 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-ckStop:
						return
					case <-tick.C:
						if h.Crashed() {
							return
						}
						rt.Checkpoint()
					}
				}
			}()
			ev := pmem.NewEvictor(h, 32, seed)
			ev.Start()

			var stop atomic.Bool
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(th)*13))
					for !stop.Load() {
						k := uint64(rng.Intn(4096)) + 1
						switch rng.Intn(3) {
						case 0:
							sl.Insert(th, k, k*3)
						case 1:
							sl.Remove(th, k)
						default:
							sl.Get(th, k)
						}
						sl.PerOp(th)
					}
					sl.ThreadExit(th)
				}(th)
			}

			time.Sleep(time.Duration(seed%4+2) * 3 * time.Millisecond)
			h.Crash()
			stop.Store(true)
			wg.Wait()
			ev.Stop()
			close(ckStop)
			ckWg.Wait()

			rt2, rep, err := core.Recover(h, core.Config{Threads: threads}, 4)
			if err != nil {
				t.Fatal(err)
			}
			certMu.Lock()
			want := snaps[rep.FailedEpoch-1]
			certMu.Unlock()
			sl2, err := structures.OpenRespctSkipList(rt2, 0)
			if err != nil {
				t.Fatal(err)
			}
			gotK, gotV := sl2.Snapshot()
			if len(gotK) != len(want.keys) {
				t.Fatalf("recovered %d keys, certified %d (failed epoch %d)", len(gotK), len(want.keys), rep.FailedEpoch)
			}
			for i := range want.keys {
				if gotK[i] != want.keys[i] || gotV[i] != want.vals[i] {
					t.Fatalf("entry %d = (%d,%d), certified (%d,%d)", i, gotK[i], gotV[i], want.keys[i], want.vals[i])
				}
			}
		})
	}
}

// TestLogSoak: concurrent appends to the append-only log under chaos
// eviction with a random crash. The recovered log must hold exactly the
// certified record count, and every surviving record must be intact (a
// record each worker wrote with a self-describing payload).
func TestLogSoak(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(4); seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const threads = 4
			h := pmem.New(pmem.Config{Size: 256 << 20, Chaos: true, Seed: seed})
			rt, err := core.NewRuntime(h, core.Config{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			l, err := structures.NewRespctLog(rt, 0)
			if err != nil {
				t.Fatal(err)
			}
			rt.CheckpointIdle()

			var certMu sync.Mutex
			snaps := map[uint64]uint64{} // ending epoch -> record count
			rt.SetQuiescedHook(func(ending uint64) {
				n := l.Len()
				certMu.Lock()
				snaps[ending] = n
				certMu.Unlock()
			})
			ckStop := make(chan struct{})
			var ckWg sync.WaitGroup
			ckWg.Add(1)
			go func() {
				defer ckWg.Done()
				tick := time.NewTicker(4 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-ckStop:
						return
					case <-tick.C:
						if h.Crashed() {
							return
						}
						rt.Checkpoint()
					}
				}
			}()
			ev := pmem.NewEvictor(h, 32, seed)
			ev.Start()

			var stop atomic.Bool
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						l.Append(th, []byte(fmt.Sprintf("w%d-%06d-payload", th, i)))
						l.PerOp(th)
					}
					l.ThreadExit(th)
				}(th)
			}

			time.Sleep(time.Duration(seed%4+2) * 3 * time.Millisecond)
			h.Crash()
			stop.Store(true)
			wg.Wait()
			ev.Stop()
			close(ckStop)
			ckWg.Wait()

			rt2, rep, err := core.Recover(h, core.Config{Threads: threads}, 4)
			if err != nil {
				t.Fatal(err)
			}
			certMu.Lock()
			want := snaps[rep.FailedEpoch-1]
			certMu.Unlock()
			l2, err := structures.OpenRespctLog(rt2, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := l2.Len(); got != want {
				t.Fatalf("recovered %d records, certified %d (failed epoch %d)", got, want, rep.FailedEpoch)
			}
			seen := uint64(0)
			l2.ForEach(func(i uint64, rec []byte) bool {
				var w, n int
				if _, err := fmt.Sscanf(string(rec), "w%d-%06d-payload", &w, &n); err != nil {
					t.Fatalf("record %d corrupt: %q", i, rec)
				}
				seen++
				return true
			})
			if seen != want {
				t.Fatalf("iterated %d records, certified %d", seen, want)
			}
		})
	}
}

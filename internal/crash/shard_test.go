package crash

import (
	"testing"
	"time"
)

func runShardedSoak(t *testing.T, seed int64, sync bool, runFor time.Duration) *ShardedSoakReport {
	t.Helper()
	if runFor == 0 {
		runFor = time.Duration(seed%7+3) * 4 * time.Millisecond
	}
	rep, err := ShardedKVSoak(ShardedSoakConfig{
		Shards:    3,
		Threads:   2,
		Buckets:   1 << 9,
		KeySpace:  400,
		Interval:  3 * time.Millisecond,
		Sync:      sync,
		EvictRate: 16,
		Seed:      seed,
		HeapBytes: 16 << 20,
		RunFor:    runFor,
	})
	if err != nil {
		t.Fatalf("seed %d sync=%v: %v (report %+v)", seed, sync, err, rep)
	}
	return rep
}

// TestShardedKVSoakStaggered validates buffered durable linearizability of
// the sharded store per shard across several seeds with staggered
// checkpoints: each shard's recovered state must equal the snapshot its own
// last completed checkpoint certified, even though shards certify at
// different moments.
func TestShardedKVSoakStaggered(t *testing.T) {
	var sawCertified bool
	for seed := int64(1); seed <= soakSeeds(3); seed++ {
		rep := runShardedSoak(t, seed, false, 0)
		if rep.OpsBeforeCrash == 0 {
			t.Fatalf("seed %d: no operations ran before the crash", seed)
		}
		if len(rep.FailedEpochs) != rep.Shards {
			t.Fatalf("seed %d: %d failed epochs for %d shards", seed, len(rep.FailedEpochs), rep.Shards)
		}
		if rep.CertifiedKeys > 0 {
			sawCertified = true
		}
	}
	// The short runs above crash 12-40ms in; on a slow host (-race, loaded
	// single CPU) every one of them can die before its first checkpoint
	// completes. Certification coverage is the point of this check, not a
	// property of any particular seed, so retry with longer runs.
	for seed := int64(101); seed <= 104 && !sawCertified; seed++ {
		sawCertified = runShardedSoak(t, seed, false, 120*time.Millisecond).CertifiedKeys > 0
	}
	if !sawCertified {
		t.Fatal("no soak run certified any keys — crashes landed before every first checkpoint")
	}
}

// TestShardedKVSoakSync runs the same soak with all shards checkpointing in
// lockstep, so all shards fail in the same epoch neighbourhood.
func TestShardedKVSoakSync(t *testing.T) {
	for seed := int64(4); seed <= 5; seed++ {
		rep := runShardedSoak(t, seed, true, 0)
		if rep.OpsBeforeCrash == 0 {
			t.Fatalf("seed %d: no operations ran before the crash", seed)
		}
	}
}

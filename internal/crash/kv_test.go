package crash

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/kv"
	"github.com/respct/respct/internal/pmem"
)

// TestKVStoreSoak validates buffered durable linearizability end to end at
// the key-value layer: concurrent string-keyed sets and deletes over the
// RespctStore on a chaos-mode heap, a crash at a random point, and a
// recovered state that must equal the snapshot certified by the last
// completed checkpoint.
func TestKVStoreSoak(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(4); seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const threads = 4
			h := pmem.New(pmem.Config{Size: 256 << 20, Chaos: true, Seed: seed})
			rt, err := core.NewRuntime(h, core.Config{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			store, err := kv.NewRespctStore(rt, 0, 1024)
			if err != nil {
				t.Fatal(err)
			}
			rt.CheckpointIdle()

			var certMu sync.Mutex
			snaps := map[uint64]map[string]string{}
			rt.SetQuiescedHook(func(ending uint64) {
				snap := store.SnapshotLogical()
				certMu.Lock()
				snaps[ending] = snap
				certMu.Unlock()
			})
			ckStop := make(chan struct{})
			var ckWg sync.WaitGroup
			ckWg.Add(1)
			go func() {
				defer ckWg.Done()
				tick := time.NewTicker(4 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-ckStop:
						return
					case <-tick.C:
						if h.Crashed() {
							return
						}
						rt.Checkpoint()
					}
				}
			}()
			ev := pmem.NewEvictor(h, 32, seed)
			ev.Start()

			var stop atomic.Bool
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(th)*17))
					for !stop.Load() {
						key := fmt.Sprintf("user%06d", rng.Intn(2000))
						if rng.Intn(4) == 0 {
							store.Delete(th, key)
						} else {
							store.Set(th, key, []byte(fmt.Sprintf("v%d-%d", th, rng.Intn(1000))))
						}
						store.PerOp(th)
					}
					store.ThreadExit(th)
				}(th)
			}

			time.Sleep(time.Duration(seed%5+2) * 3 * time.Millisecond)
			h.Crash()
			stop.Store(true)
			wg.Wait()
			ev.Stop()
			close(ckStop)
			ckWg.Wait()

			rt2, rep, err := core.Recover(h, core.Config{Threads: threads}, 4)
			if err != nil {
				t.Fatal(err)
			}
			certMu.Lock()
			want := snaps[rep.FailedEpoch-1]
			certMu.Unlock()
			store2, err := kv.OpenRespctStore(rt2, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := store2.SnapshotLogical()
			if len(got) != len(want) {
				t.Fatalf("recovered %d keys, certified %d (failed epoch %d)", len(got), len(want), rep.FailedEpoch)
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %q = %q, certified %q", k, got[k], v)
				}
			}
		})
	}
}

package crash

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/kv"
	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/shard"
)

// TestKVStructSoak extends the KV soak to the full multi-model surface:
// concurrent workers drive ordered-index churn (sets/deletes behind SCAN),
// the TTL lifecycle, shared queues and logs on a chaos-mode heap, a
// dedicated sweeper thread runs the expiry sweep inside every checkpoint
// cut, and a crash at a random point must recover the whole logical state
// (KV entries with deadlines plus the ordered-index, queue and log
// pseudo-keys) to the snapshot certified by the last completed checkpoint.
func TestKVStructSoak(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(4); seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const workers = 4
			const sweeper = workers // dedicated thread slot, like shard.Pool
			var clock atomic.Uint64
			clock.Store(1000)
			h := pmem.New(pmem.Config{Size: 256 << 20, Chaos: true, Seed: seed})
			rt, err := core.NewRuntime(h, core.Config{Threads: workers + 1})
			if err != nil {
				t.Fatal(err)
			}
			store, err := kv.NewRespctStoreOpts(rt, 0, kv.StoreOptions{
				Buckets: 1024, Structures: true, Clock: clock.Load})
			if err != nil {
				t.Fatal(err)
			}
			rt.CheckpointIdle()

			var certMu sync.Mutex
			snaps := map[uint64]map[string]string{}
			rt.SetQuiescedHook(func(ending uint64) {
				snap := store.SnapshotLogical()
				certMu.Lock()
				snaps[ending] = snap
				certMu.Unlock()
			})
			ckStop := make(chan struct{})
			var ckWg sync.WaitGroup
			ckWg.Add(1)
			go func() {
				defer ckWg.Done()
				tsw := rt.Thread(sweeper)
				tick := time.NewTicker(4 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-ckStop:
						return
					case <-tick.C:
						if h.Crashed() {
							return
						}
						// Advance time, sweep inside the epoch about to be
						// cut, then checkpoint — shard.Pool.checkpointShard's
						// schedule.
						now := clock.Add(7)
						tsw.CheckpointPrevent(nil)
						store.SweepExpired(sweeper, now)
						store.PerOp(sweeper)
						tsw.CheckpointAllow()
						rt.Checkpoint()
					}
				}
			}()
			ev := pmem.NewEvictor(h, 32, seed)
			ev.Start()

			var stop atomic.Bool
			var wg sync.WaitGroup
			for th := 0; th < workers; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(th)*17))
					for !stop.Load() {
						key := fmt.Sprintf("user%05d", rng.Intn(1500))
						switch rng.Intn(10) {
						case 0:
							store.Delete(th, key)
						case 1:
							store.Expire(th, key, clock.Load()+uint64(rng.Intn(40)))
						case 2:
							store.Scan(th, key, "", 8)
						case 3:
							store.QPush(th, "jobs", []byte(fmt.Sprintf("j%d-%d", th, rng.Intn(1000))))
						case 4:
							store.QPop(th, "jobs")
						case 5:
							store.LAppend(th, "events", []byte(fmt.Sprintf("e%d-%d", th, rng.Intn(1000))))
						case 6:
							store.TTL(th, key)
						default:
							store.Set(th, key, []byte(fmt.Sprintf("v%d-%d", th, rng.Intn(1000))))
						}
						store.PerOp(th)
					}
					store.ThreadExit(th)
				}(th)
			}

			time.Sleep(time.Duration(seed%5+2) * 3 * time.Millisecond)
			h.Crash()
			stop.Store(true)
			wg.Wait()
			ev.Stop()
			close(ckStop)
			ckWg.Wait()

			rt2, rep, err := core.Recover(h, core.Config{Threads: workers + 1}, 4)
			if err != nil {
				t.Fatal(err)
			}
			certMu.Lock()
			want := snaps[rep.FailedEpoch-1]
			certMu.Unlock()
			store2, err := kv.OpenRespctStoreOpts(rt2, 0, kv.StoreOptions{
				Structures: true, Clock: clock.Load})
			if err != nil {
				t.Fatal(err)
			}
			got := store2.SnapshotLogical()
			if len(got) != len(want) {
				t.Fatalf("recovered %d logical entries, certified %d (failed epoch %d)",
					len(got), len(want), rep.FailedEpoch)
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("entry %q = %q, certified %q", k, got[k], v)
				}
			}
		})
	}
}

// TestShardStructSoak is the sharded variant: a structures pool under the
// staggered checkpoint driver (which sweeps each shard inside its cut),
// concurrent workers across every command family, then a whole-machine
// crash; every shard must recover to its own certified cut.
func TestShardStructSoak(t *testing.T) {
	runShardStructSoak(t, false)
}

// TestShardStructSoakSync: same with the synchronized schedule.
func TestShardStructSoakSync(t *testing.T) {
	runShardStructSoak(t, true)
}

func runShardStructSoak(t *testing.T, syncCk bool) {
	for seed := int64(1); seed <= soakSeeds(2); seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const shards = 3
			const workers = 2
			var clock atomic.Uint64
			clock.Store(1000)
			cfg := shard.Config{
				Shards:     shards,
				Workers:    workers,
				Buckets:    1 << 9,
				HeapBytes:  16 << 20,
				Interval:   3 * time.Millisecond,
				Sync:       syncCk,
				Chaos:      true,
				Seed:       seed,
				Structures: true,
				Clock:      clock.Load,
			}
			pool, err := shard.NewPool(cfg)
			if err != nil {
				t.Fatal(err)
			}
			store := pool.Store()

			var certMu sync.Mutex
			snaps := make([]map[uint64]map[string]string, shards)
			for i := 0; i < shards; i++ {
				snaps[i] = map[uint64]map[string]string{}
				sh := pool.Shard(i)
				sh.RT.SetQuiescedHook(func(ending uint64) {
					snap := sh.KV.SnapshotLogical()
					certMu.Lock()
					snaps[sh.Index][ending] = snap
					certMu.Unlock()
				})
			}
			pool.Start()

			evictors := make([]*pmem.Evictor, shards)
			for i := range evictors {
				evictors[i] = pmem.NewEvictor(pool.Shard(i).Heap, 16, seed+int64(i)*7)
				evictors[i].Start()
			}

			clkStop := make(chan struct{})
			var clkWg sync.WaitGroup
			clkWg.Add(1)
			go func() {
				defer clkWg.Done()
				tick := time.NewTicker(time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-clkStop:
						return
					case <-tick.C:
						clock.Add(13)
					}
				}
			}()

			var stop atomic.Bool
			var wg sync.WaitGroup
			for th := 0; th < workers; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(th)*17))
					for !stop.Load() {
						key := fmt.Sprintf("user%05d", rng.Intn(400))
						switch rng.Intn(10) {
						case 0:
							store.Delete(th, key)
						case 1:
							store.Expire(th, key, clock.Load()+uint64(rng.Intn(30)))
						case 2:
							store.Scan(th, key, "", 6)
						case 3:
							store.QPush(th, "jobs", []byte(fmt.Sprintf("j%d", rng.Intn(1000))))
						case 4:
							store.QPop(th, "jobs")
						case 5:
							store.LAppend(th, "events", []byte(fmt.Sprintf("e%d", rng.Intn(1000))))
						case 6:
							store.TTL(th, key)
						default:
							store.Set(th, key, []byte(fmt.Sprintf("v%d-%d", th, rng.Intn(1000))))
						}
					}
					store.ThreadExit(th)
				}(th)
			}

			time.Sleep(time.Duration(seed%5+2) * 4 * time.Millisecond)
			for i := 0; i < shards; i++ {
				pool.Shard(i).Heap.Crash()
			}
			stop.Store(true)
			wg.Wait()
			for _, ev := range evictors {
				ev.Stop()
			}
			close(clkStop)
			clkWg.Wait()
			heaps := make([]*pmem.Heap, shards)
			for i := range heaps {
				heaps[i] = pool.Shard(i).Heap
			}
			pool.Close()

			rcfg := cfg
			rcfg.Interval = 0
			pool2, rep, err := shard.Recover(rcfg, heaps)
			if err != nil {
				t.Fatal(err)
			}
			defer pool2.Close()
			for i := 0; i < shards; i++ {
				failed := rep.PerShard[i].FailedEpoch
				certMu.Lock()
				want := snaps[i][failed-1]
				certMu.Unlock()
				got := pool2.Shard(i).KV.SnapshotLogical()
				if len(got) != len(want) {
					t.Fatalf("shard %d recovered %d logical entries, certified %d (failed epoch %d)",
						i, len(got), len(want), failed)
				}
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("shard %d entry %q = %q, certified %q", i, k, got[k], v)
					}
				}
			}
		})
	}
}

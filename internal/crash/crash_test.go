package crash

import (
	"testing"
	"time"
)

// soakSeeds caps a soak's seed count in -short mode (the README's "-short
// trims property-test iterations"): on a slow host the race-detector pass
// over every full-length soak would exceed the default package timeout.
func soakSeeds(full int64) int64 {
	if testing.Short() && full > 2 {
		return 2
	}
	return full
}

func soakConfig(seed int64) MapSoakConfig {
	return MapSoakConfig{
		Threads:      4,
		Buckets:      512,
		KeySpace:     2048,
		OpsPerThread: 1 << 30, // run until crashed
		EvictRate:    32,
		Interval:     4 * time.Millisecond,
		Seed:         seed,
		HeapBytes:    128 << 20,
	}
}

func TestMapSoakManySeeds(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(8); seed++ {
		rep, err := MapSoak(soakConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
		}
		if rep.OpsBeforeCrash == 0 {
			t.Fatalf("seed %d: crash before any work", seed)
		}
	}
}

func TestQueueSoakManySeeds(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds(8); seed++ {
		cfg := soakConfig(seed)
		rep, err := QueueSoak(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
		}
	}
}

func TestMapSoakEvictionRates(t *testing.T) {
	// From almost-no eviction (nothing but checkpoint flushes reach NVMM)
	// to aggressive eviction (most of the doomed epoch is already in NVMM),
	// recovery must always land on the certified snapshot.
	for _, rate := range []int{1, 64, 1024} {
		cfg := soakConfig(3)
		cfg.EvictRate = rate
		rep, err := MapSoak(cfg)
		if err != nil {
			t.Fatalf("rate %d: %v (report %+v)", rate, err, rep)
		}
	}
}

func TestWARViolationIsObservable(t *testing.T) {
	// The deliberately mis-instrumented counter (WAR without InCLL) must
	// recover to a non-checkpointed value — demonstrating that the §3.3.2
	// logging rule is load-bearing, and that our checker can see it.
	detected, err := WARViolationDetected(7)
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Fatal("WAR violation went undetected — the experiment lost its teeth")
	}
}

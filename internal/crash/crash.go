//respct:exportdoc

// Package crash validates the paper's correctness claims (§4) empirically:
// it runs multi-threaded workloads on a Chaos-mode heap — random cache-line
// evictions pushing partial state into NVMM at arbitrary moments — kills the
// machine at a random point, recovers, and checks that the recovered state
// equals the logical snapshot certified at the last completed checkpoint
// (buffered durable linearizability), or detects the absence of that
// property when the programming rules are deliberately violated.
package crash

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/respct/respct/internal/core"
	"github.com/respct/respct/internal/pmem"
	"github.com/respct/respct/internal/structures"
)

// MapSoakConfig parameterises one map crash soak.
type MapSoakConfig struct {
	Threads      int           // concurrent worker goroutines
	Buckets      int           // RespctMap bucket count
	KeySpace     uint64        // distinct keys the workers hammer
	OpsPerThread int           // ops each worker performs before the crash fires
	EvictRate    int           // evictor probe rate
	Interval     time.Duration // checkpoint period
	Seed         int64         // workload and chaos RNG seed
	HeapBytes    int64         // heap size (0 = default)
}

// SoakReport describes one soak run.
type SoakReport struct {
	Checkpoints    uint64 // checkpoints completed before the crash
	CertifiedKeys  int    // keys in the snapshot certified at the last completed checkpoint
	RecoveredKeys  int    // keys in the recovered map
	FailedEpoch    uint64 // epoch the recovery pass reported as interrupted
	OpsBeforeCrash uint64 // worker ops completed when the crash fired
}

// MapSoak runs concurrent workers over a RespctMap with a periodic
// checkpointer and a chaos evictor, crashes mid-run, recovers, and compares
// the recovered map against the snapshot certified by the last completed
// checkpoint. Returns an error describing the first divergence.
func MapSoak(cfg MapSoakConfig) (*SoakReport, error) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 256 << 20
	}
	h := pmem.New(pmem.Config{Size: cfg.HeapBytes, Chaos: true, Seed: cfg.Seed})
	rt, err := core.NewRuntime(h, core.Config{Threads: cfg.Threads})
	if err != nil {
		return nil, err
	}
	m, err := structures.NewRespctMap(rt, 0, cfg.Buckets)
	if err != nil {
		return nil, err
	}

	// Certify a logical snapshot at every checkpoint, keyed by the epoch
	// the checkpoint closes. The hook runs while every worker is parked,
	// before the flush: the state it sees is exactly what that checkpoint
	// makes durable. After the crash, the recovered state must equal the
	// snapshot of the checkpoint that started the failed epoch — i.e.
	// snaps[failedEpoch-1] — regardless of where inside a checkpoint the
	// crash landed.
	var certMu sync.Mutex
	snaps := map[uint64]map[uint64]uint64{}
	rt.SetQuiescedHook(func(ending uint64) {
		snap := m.Snapshot()
		certMu.Lock()
		snaps[ending] = snap
		certMu.Unlock()
	})
	// Make the structure's creation durable before the workload begins:
	// without this a crash before the first periodic checkpoint would
	// (correctly) lose the structure itself.
	for i := 0; i < cfg.Threads; i++ {
		rt.Thread(i).CheckpointAllow()
	}
	rt.Checkpoint()
	for i := 0; i < cfg.Threads; i++ {
		rt.Thread(i).CheckpointPrevent(nil)
	}

	ckStop := make(chan struct{})
	var ckWg sync.WaitGroup
	ckWg.Add(1)
	go func() {
		defer ckWg.Done()
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-ckStop:
				return
			case <-tick.C:
				if h.Crashed() {
					return
				}
				rt.Checkpoint()
			}
		}
	}()

	ev := pmem.NewEvictor(h, cfg.EvictRate, cfg.Seed)
	ev.Start()

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(th)*31))
			for i := 0; i < cfg.OpsPerThread && !stop.Load(); i++ {
				k := uint64(rng.Int63n(int64(cfg.KeySpace))) + 1
				switch rng.Intn(3) {
				case 0:
					m.Insert(th, k, k*2+uint64(th))
				case 1:
					m.Remove(th, k)
				default:
					m.Get(th, k)
				}
				m.PerOp(th)
				ops.Add(1)
			}
			m.ThreadExit(th)
		}(th)
	}

	// Crash at a random point while work is in flight.
	crashDelay := time.Duration(cfg.Seed%7+2) * cfg.Interval / 2
	time.Sleep(crashDelay)
	h.Crash()
	stop.Store(true)
	wg.Wait()
	ev.Stop()
	close(ckStop)
	ckWg.Wait()

	ckCount := rt.Stats().Checkpoints

	rt2, rep, err := core.Recover(h, core.Config{Threads: cfg.Threads}, 4)
	if err != nil {
		return nil, err
	}
	certMu.Lock()
	want := snaps[rep.FailedEpoch-1] // nil (empty) if no checkpoint completed
	certMu.Unlock()
	m2, err := structures.OpenRespctMap(rt2, 0)
	if err != nil {
		return nil, err
	}
	got := m2.Snapshot()

	report := &SoakReport{
		Checkpoints:    ckCount,
		CertifiedKeys:  len(want),
		RecoveredKeys:  len(got),
		FailedEpoch:    rep.FailedEpoch,
		OpsBeforeCrash: ops.Load(),
	}
	if len(got) != len(want) {
		return report, fmt.Errorf("crash: recovered %d keys, certified snapshot has %d", len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			return report, fmt.Errorf("crash: key %d recovered as %d,%v; certified %d", k, gv, ok, v)
		}
	}
	return report, nil
}

// QueueSoak is the FIFO analogue of MapSoak.
func QueueSoak(cfg MapSoakConfig) (*SoakReport, error) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 256 << 20
	}
	h := pmem.New(pmem.Config{Size: cfg.HeapBytes, Chaos: true, Seed: cfg.Seed})
	rt, err := core.NewRuntime(h, core.Config{Threads: cfg.Threads})
	if err != nil {
		return nil, err
	}
	q, err := structures.NewRespctQueue(rt, 0)
	if err != nil {
		return nil, err
	}

	var certMu sync.Mutex
	snaps := map[uint64][]uint64{}
	rt.SetQuiescedHook(func(ending uint64) {
		snap := q.Snapshot()
		certMu.Lock()
		snaps[ending] = snap
		certMu.Unlock()
	})
	// Make the structure's creation durable before the workload begins:
	// without this a crash before the first periodic checkpoint would
	// (correctly) lose the structure itself.
	for i := 0; i < cfg.Threads; i++ {
		rt.Thread(i).CheckpointAllow()
	}
	rt.Checkpoint()
	for i := 0; i < cfg.Threads; i++ {
		rt.Thread(i).CheckpointPrevent(nil)
	}

	ckStop := make(chan struct{})
	var ckWg sync.WaitGroup
	ckWg.Add(1)
	go func() {
		defer ckWg.Done()
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-ckStop:
				return
			case <-tick.C:
				if h.Crashed() {
					return
				}
				rt.Checkpoint()
			}
		}
	}()

	ev := pmem.NewEvictor(h, cfg.EvictRate, cfg.Seed)
	ev.Start()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(th)*77))
			for i := 0; i < cfg.OpsPerThread && !stop.Load(); i++ {
				if rng.Intn(2) == 0 {
					q.Enqueue(th, uint64(th)<<32|uint64(i)+1)
				} else {
					q.Dequeue(th)
				}
				q.PerOp(th)
			}
			q.ThreadExit(th)
		}(th)
	}

	time.Sleep(time.Duration(cfg.Seed%5+2) * cfg.Interval / 2)
	h.Crash()
	stop.Store(true)
	wg.Wait()
	ev.Stop()
	close(ckStop)
	ckWg.Wait()

	rt2, rep, err := core.Recover(h, core.Config{Threads: cfg.Threads}, 4)
	if err != nil {
		return nil, err
	}
	certMu.Lock()
	want := snaps[rep.FailedEpoch-1]
	certMu.Unlock()
	q2, err := structures.OpenRespctQueue(rt2, 0)
	if err != nil {
		return nil, err
	}
	got := q2.Snapshot()
	report := &SoakReport{
		Checkpoints:   rt.Stats().Checkpoints,
		CertifiedKeys: len(want),
		RecoveredKeys: len(got),
		FailedEpoch:   rep.FailedEpoch,
	}
	if len(got) != len(want) {
		return report, fmt.Errorf("crash: recovered queue length %d, certified %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return report, fmt.Errorf("crash: element %d = %d, certified %d", i, got[i], want[i])
		}
	}
	return report, nil
}

// WARViolationDetected demonstrates rule (ii) of §3.3.2: persistent data
// with a write-after-read dependency that skips InCLL can recover to a state
// that never existed. It runs a counter incremented with plain tracked
// stores (read + write, no undo log), crashes after some post-checkpoint
// increments with the update already evicted to NVMM, recovers, and reports
// whether the recovered value differs from the checkpointed one — which a
// correctly logged counter never does.
func WARViolationDetected(seed int64) (bool, error) {
	h := pmem.New(pmem.Config{Size: 16 << 20, Chaos: true, Seed: seed})
	rt, err := core.NewRuntime(h, core.Config{Threads: 1})
	if err != nil {
		return false, err
	}
	t := rt.Thread(0)
	counter := rt.Arena().AllocRaw(t, 1)
	t.StoreTracked(counter, 0)
	t.CheckpointAllow()
	rt.Checkpoint()
	t.CheckpointPrevent(nil)
	checkpointed := h.Load64(counter)

	// Doomed epoch: WAR updates without InCLL (the violation).
	for i := 0; i < 10; i++ {
		t.StoreTracked(counter, h.Load64(counter)+1)
	}
	h.EvictAll() // hardware may write the dirty line back at any time
	h.Crash()

	rt2, _, err := core.Recover(h, core.Config{Threads: 1}, 1)
	if err != nil {
		return false, err
	}
	recovered := rt2.Heap().Load64(counter)
	// A correct recovery would restore `checkpointed`; the WAR violation
	// leaves the partially-persisted value in place.
	return recovered != checkpointed, nil
}

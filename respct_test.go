// Facade tests: exercise the library exclusively through the public API at
// the module root, exactly as a downstream importer would.
package respct_test

import (
	"bytes"
	"testing"
	"time"

	respct "github.com/respct/respct"
)

func TestFacadeCounterLifecycle(t *testing.T) {
	heap := respct.NewHeap(respct.NVMM(16 << 20))
	rt, err := respct.New(heap, respct.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	th := rt.Thread(0)
	block := rt.Arena().AllocCells(th, 1)
	counter := respct.Cell(block, 0)
	th.Init(counter, 0)
	th.Update(rt.RootInCLL(1), uint64(block))
	for i := 0; i < 100; i++ {
		th.Update(counter, rt.Read(counter)+1)
		th.RP(1)
	}
	rt.CheckpointIdle()
	th.Update(counter, 9999)
	heap.EvictAll()
	heap.Crash()

	rt2, rep, err := respct.Recover(heap, respct.Config{Threads: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedEpoch == 0 {
		t.Fatal("no failed epoch reported")
	}
	c2 := respct.Cell(rt2.ReadAddr(rt2.RootInCLL(1)), 0)
	if got := rt2.Read(c2); got != 100 {
		t.Fatalf("recovered counter = %d, want 100", got)
	}
}

func TestFacadeStructures(t *testing.T) {
	heap := respct.NewHeap(respct.NVMM(64 << 20))
	rt, err := respct.New(heap, respct.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := respct.NewMap(rt, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	q, err := respct.NewQueue(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := respct.NewSkipList(rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		m.Insert(0, i, i*2)
		q.Enqueue(0, i)
		sl.Insert(0, i*10, i)
	}
	rt.CheckpointIdle()
	heap.Crash()

	rt2, _, err := respct.Recover(heap, respct.Config{Threads: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := respct.OpenMap(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := respct.OpenQueue(rt2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sl2, err := respct.OpenSkipList(rt2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m2.Get(0, 25); !ok || v != 50 {
		t.Fatalf("map key 25 = %d,%v", v, ok)
	}
	if v, ok := q2.Dequeue(0); !ok || v != 1 {
		t.Fatalf("queue head = %d,%v", v, ok)
	}
	sum := uint64(0)
	sl2.Scan(0, 100, 200, func(k, v uint64) bool { sum += v; return true })
	if sum != 10+11+12+13+14+15+16+17+18+19+20 {
		t.Fatalf("skiplist scan sum = %d", sum)
	}
}

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	heap := respct.NewHeap(respct.NVMM(32 << 20))
	rt, err := respct.New(heap, respct.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := respct.NewMap(rt, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	m.Insert(0, 7, 77)
	rt.CheckpointIdle()

	var img bytes.Buffer
	if err := heap.Snapshot(&img); err != nil {
		t.Fatal(err)
	}
	h2, err := respct.OpenSnapshot(&img, respct.NVMM(0))
	if err != nil {
		t.Fatal(err)
	}
	rt2, _, err := respct.Recover(h2, respct.Config{Threads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := respct.OpenMap(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m2.Get(0, 7); !ok || v != 77 {
		t.Fatalf("snapshot round trip lost data: %d,%v", v, ok)
	}
}

func TestFacadeLog(t *testing.T) {
	heap := respct.NewHeap(respct.NVMM(32 << 20))
	rt, err := respct.New(heap, respct.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := respct.NewLog(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append(0, []byte{byte('a' + i)})
	}
	rt.CheckpointIdle()
	l.Append(0, []byte("doomed"))
	heap.Crash()
	rt2, _, err := respct.Recover(heap, respct.Config{Threads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := respct.OpenLog(rt2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 10 {
		t.Fatalf("recovered %d records, want 10", l2.Len())
	}
}

func TestFacadeCheckpointerHelper(t *testing.T) {
	heap := respct.NewHeap(respct.EADR(16 << 20))
	rt, err := respct.New(heap, respct.Config{Threads: 1, SkipFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.Thread(0).CheckpointAllow()
	ck := respct.StartCheckpointing(rt, 2*time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	ck.Stop()
	if rt.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoints")
	}
}
